#include "src/parsers/hierarchy.hpp"

#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "src/base/check.hpp"
#include "src/base/strings.hpp"

namespace halotis {

namespace {

struct Statement {
  std::vector<std::string> tokens;
  int line = 0;
};

struct ModuleDef {
  std::string name;
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::vector<Statement> body;
  int line = 0;
};

struct ParsedDesign {
  std::map<std::string, ModuleDef> modules;
  std::vector<Statement> top;
};

std::string ctx(int line) { return "hierarchical netlist line " + std::to_string(line); }

/// Splits "( a b : c d )"-style port lists that may be glued to other
/// tokens; returns (inputs, outputs).
std::pair<std::vector<std::string>, std::vector<std::string>> parse_ports(
    const std::vector<std::string>& tokens, std::size_t start, int line) {
  // Re-join and strip parentheses, then split on ':'.
  std::string joined;
  for (std::size_t i = start; i < tokens.size(); ++i) {
    joined += tokens[i];
    joined += ' ';
  }
  std::string cleaned;
  for (const char c : joined) {
    if (c != '(' && c != ')') cleaned.push_back(c);
  }
  const auto halves = split(cleaned, ':');
  require(halves.size() == 2, ctx(line) + ": expected '(inputs : outputs)'");
  return {split_whitespace(halves[0]), split_whitespace(halves[1])};
}

ParsedDesign parse(std::string_view text) {
  ParsedDesign design;
  std::istringstream stream{std::string(text)};
  std::string line;
  int line_number = 0;
  ModuleDef* current = nullptr;
  while (std::getline(stream, line)) {
    ++line_number;
    const auto tokens = split_whitespace(line.substr(0, line.find('#')));
    if (tokens.empty()) continue;

    if (tokens[0] == "module") {
      require(current == nullptr, ctx(line_number) + ": nested module definition");
      require(tokens.size() >= 2, ctx(line_number) + ": module needs a name");
      ModuleDef def;
      def.name = tokens[1];
      def.line = line_number;
      require(design.modules.find(def.name) == design.modules.end(),
              ctx(line_number) + ": duplicate module '" + def.name + "'");
      auto [ins, outs] = parse_ports(tokens, 2, line_number);
      require(!outs.empty(), ctx(line_number) + ": module needs at least one output");
      def.inputs = std::move(ins);
      def.outputs = std::move(outs);
      std::string key = def.name;  // keep a copy: def is moved in the same call
      current = &design.modules.emplace(std::move(key), std::move(def)).first->second;
      continue;
    }
    if (tokens[0] == "endmodule") {
      require(current != nullptr, ctx(line_number) + ": endmodule outside a module");
      current = nullptr;
      continue;
    }
    Statement statement{tokens, line_number};
    if (current != nullptr) {
      current->body.push_back(std::move(statement));
    } else {
      design.top.push_back(std::move(statement));
    }
  }
  if (current != nullptr) {
    require(false,
            "hierarchical netlist: unterminated module '" + current->name + "'");
  }
  return design;
}

class Flattener {
 public:
  Flattener(const ParsedDesign& design, const Library& library)
      : design_(design), library_(library), netlist_(library) {}

  Netlist run() {
    // Top level: declare signals first (inputs/signals/outputs), then
    // elaborate gates and instances (two passes keep declaration order in
    // the file free).
    for (const Statement& s : design_.top) declare(s, "", nullptr);
    for (const Statement& s : design_.top) elaborate(s, "", nullptr);
    netlist_.check();
    return std::move(netlist_);
  }

 private:
  using PortMap = std::map<std::string, SignalId>;

  [[nodiscard]] std::string scoped(const std::string& prefix, const std::string& name) const {
    return prefix.empty() ? name : prefix + "/" + name;
  }

  SignalId resolve(const std::string& prefix, const PortMap* ports,
                   const std::string& name, int line) {
    if (ports != nullptr) {
      const auto it = ports->find(name);
      if (it != ports->end()) return it->second;
    }
    const auto found = netlist_.find_signal(scoped(prefix, name));
    require(found.has_value(), ctx(line) + ": unknown signal '" + name + "'");
    return *found;
  }

  void declare(const Statement& s, const std::string& prefix, const PortMap* ports) {
    const auto& t = s.tokens;
    if (t[0] == "input") {
      require(prefix.empty(), ctx(s.line) + ": 'input' only allowed at top level");
      require(t.size() == 2, ctx(s.line) + ": input <name>");
      (void)netlist_.add_primary_input(t[1]);
    } else if (t[0] == "signal") {
      require(t.size() == 2, ctx(s.line) + ": signal <name>");
      // Port-mapped names must not be redeclared inside the module body.
      if (ports == nullptr || ports->find(t[1]) == ports->end()) {
        (void)netlist_.add_signal(scoped(prefix, t[1]));
      }
    }
  }

  void elaborate(const Statement& s, const std::string& prefix, const PortMap* ports) {
    const auto& t = s.tokens;
    if (t[0] == "input" || t[0] == "signal") return;  // handled in declare()
    if (t[0] == "output") {
      require(prefix.empty(), ctx(s.line) + ": 'output' only allowed at top level");
      require(t.size() == 2, ctx(s.line) + ": output <name>");
      netlist_.mark_primary_output(resolve(prefix, ports, t[1], s.line));
      return;
    }
    if (t[0] == "wirecap") {
      require(t.size() == 3, ctx(s.line) + ": wirecap <name> <pF>");
      netlist_.set_wire_cap(resolve(prefix, ports, t[1], s.line),
                            parse_double(t[2], ctx(s.line)));
      return;
    }
    if (t[0] == "gate") {
      require(t.size() >= 5, ctx(s.line) + ": gate <name> <CELL> <out> <in...>");
      const auto cell = library_.try_find(t[2]);
      require(cell.has_value(), ctx(s.line) + ": unknown cell '" + t[2] + "'");
      std::vector<SignalId> ins;
      for (std::size_t i = 4; i < t.size(); ++i) {
        ins.push_back(resolve(prefix, ports, t[i], s.line));
      }
      (void)netlist_.add_gate(scoped(prefix, t[1]), *cell, ins,
                              resolve(prefix, ports, t[3], s.line));
      return;
    }
    if (t[0] == "inst") {
      require(t.size() >= 4, ctx(s.line) + ": inst <name> <MODULE> (ins : outs)");
      const std::string& module_name = t[2];
      const auto it = design_.modules.find(module_name);
      require(it != design_.modules.end(),
              ctx(s.line) + ": unknown module '" + module_name + "'");
      require(active_.insert(module_name).second,
              ctx(s.line) + ": recursive instantiation of '" + module_name + "'");
      const ModuleDef& def = it->second;
      auto [actual_ins, actual_outs] = parse_ports(t, 3, s.line);
      require(actual_ins.size() == def.inputs.size(),
              ctx(s.line) + ": '" + module_name + "' expects " +
                  std::to_string(def.inputs.size()) + " inputs");
      require(actual_outs.size() == def.outputs.size(),
              ctx(s.line) + ": '" + module_name + "' expects " +
                  std::to_string(def.outputs.size()) + " outputs");

      PortMap map;
      for (std::size_t i = 0; i < def.inputs.size(); ++i) {
        map[def.inputs[i]] = resolve(prefix, ports, actual_ins[i], s.line);
      }
      for (std::size_t i = 0; i < def.outputs.size(); ++i) {
        map[def.outputs[i]] = resolve(prefix, ports, actual_outs[i], s.line);
      }
      const std::string inner = scoped(prefix, t[1]);
      for (const Statement& body : def.body) declare(body, inner, &map);
      for (const Statement& body : def.body) elaborate(body, inner, &map);
      active_.erase(module_name);
      return;
    }
    require(false, ctx(s.line) + ": unknown directive '" + t[0] + "'");
  }

  const ParsedDesign& design_;
  const Library& library_;
  Netlist netlist_;
  std::set<std::string> active_;  // instantiation stack for recursion check
};

}  // namespace

Netlist read_hierarchical(std::string_view text, const Library& library) {
  const ParsedDesign design = parse(text);
  Flattener flattener(design, library);
  return flattener.run();
}

bool looks_hierarchical(std::string_view text) {
  std::istringstream stream{std::string(text)};
  std::string line;
  while (std::getline(stream, line)) {
    const auto tokens = split_whitespace(line.substr(0, line.find('#')));
    if (tokens.empty()) continue;
    if (tokens[0] == "module" || tokens[0] == "inst") return true;
  }
  return false;
}

}  // namespace halotis
