// Hierarchical netlist format: module definitions + instantiation, with a
// flattener producing the plain Netlist the engines consume.
//
//   module FA (a b cin : sum cout)      # inputs : outputs
//     signal axb
//     gate x1 XOR2_X1 axb a b
//     gate x2 XOR2_X1 sum axb cin
//     signal ab
//     gate a1 AND2_X1 ab a b
//     signal cx
//     gate a2 AND2_X1 cx axb cin
//     gate o1 OR2_X1 cout ab cx
//   endmodule
//
//   input x
//   input y
//   input ci
//   signal s
//   signal co
//   output s
//   inst fa0 FA (x y ci : s co)         # positional, inputs : outputs
//
// Instances may nest (modules instantiating modules); recursion is
// rejected.  Flattening prefixes inner names with the instance path
// ("fa0/axb"), so waveforms and reports stay navigable.
#pragma once

#include <string_view>

#include "src/netlist/netlist.hpp"

namespace halotis {

/// Parses and flattens; throws ContractViolation with line context on
/// malformed input, unknown modules/cells, port mismatches or recursion.
[[nodiscard]] Netlist read_hierarchical(std::string_view text, const Library& library);

/// True when the text looks like the hierarchical dialect (has modules or
/// instances); used by the CLI to pick the parser for .net files.
[[nodiscard]] bool looks_hierarchical(std::string_view text);

}  // namespace halotis
