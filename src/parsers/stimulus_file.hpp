// Stimulus (test-vector) file reader.
//
// Line-oriented format:
//   # comment
//   slew 0.4                     -- default ramp duration, ns
//   init  <signal> <0|1>         -- value before time zero
//   edge  <signal> <time> <0|1> [tau]
//   seq   <sig_msb..sig_lsb> start <t0> period <dt> words <w0> <w1> ...
// `seq` applies integer words (hex with 0x, else decimal) across the named
// signals, MSB first, at t0, t0+dt, ...; the first word sets initial values.
#pragma once

#include <string_view>

#include "src/core/stimulus.hpp"
#include "src/netlist/netlist.hpp"

namespace halotis {

[[nodiscard]] Stimulus read_stimulus(std::string_view text, const Netlist& netlist);

}  // namespace halotis
