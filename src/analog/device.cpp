#include "src/analog/device.hpp"

namespace halotis {

double nmos_current(const MosParams& p, double w_um, double vgs, double vds) {
  require(w_um > 0.0, "nmos_current(): width must be positive");
  if (vds <= 0.0) return 0.0;
  const double vov = vgs - p.vt;
  if (vov <= 0.0) return 0.0;  // cut-off (subthreshold ignored)
  const double beta = p.k_prime * (w_um / p.l_um);
  const double clm = 1.0 + p.lambda * vds;
  if (vds >= vov) {
    return 0.5 * beta * vov * vov * clm;  // saturation
  }
  return beta * (vov * vds - 0.5 * vds * vds) * clm;  // linear/triode
}

double pmos_current(const MosParams& p, double w_um, Volt vdd, double vg, double vd) {
  // Mirror: source at vdd, |vgs| = vdd - vg, |vds| = vdd - vd.
  return nmos_current(p, w_um, vdd - vg, vdd - vd);
}

}  // namespace halotis
