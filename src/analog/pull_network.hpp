// Series/parallel pull-network expressions and the decomposition of every
// library cell into primitive complementary-CMOS stages.
//
// Each stage is one inverting CMOS structure: an NMOS pull-down network
// described by a series/parallel expression over the stage's inputs, and
// the dual PMOS pull-up network.  Non-inverting and composite cells expand
// into several stages exactly like their standard-cell implementations
// (AND = NAND + INV, XOR = 4x NAND, MUX = INV + AOI22 + INV, ...), which is
// what gives the analog reference realistic internal glitching.
#pragma once

#include <span>
#include <vector>

#include "src/analog/device.hpp"
#include "src/netlist/cell.hpp"

namespace halotis {

/// Series/parallel expression over stage input slots.
class PullExpr {
 public:
  enum class Kind { kLeaf, kSeries, kParallel };

  [[nodiscard]] static PullExpr leaf(int slot);
  [[nodiscard]] static PullExpr series(std::vector<PullExpr> children);
  [[nodiscard]] static PullExpr parallel(std::vector<PullExpr> children);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] int slot() const { return slot_; }
  [[nodiscard]] std::span<const PullExpr> children() const { return children_; }

  /// The dual network (series <-> parallel) -- the PMOS pull-up of a
  /// complementary stage.
  [[nodiscard]] PullExpr dual() const;

  /// Boolean conduction with the given slot values (true = device on).
  [[nodiscard]] bool conducts(std::span<const bool> slot_values) const;

  /// Number of input slots referenced (max slot index + 1).
  [[nodiscard]] int max_slot() const;

 private:
  Kind kind_ = Kind::kLeaf;
  int slot_ = 0;
  std::vector<PullExpr> children_;
};

/// Current through an NMOS pull-down network between the output node at
/// `v_out` and ground.  Series branches compose harmonically (resistor-like
/// current limiting), parallel branches add.  Returns mA >= 0.
[[nodiscard]] double pdn_current(const PullExpr& expr, const MosParams& nmos, double w_um,
                                 std::span<const double> slot_voltages, double v_out);

/// Current through the dual PMOS pull-up network from VDD into the output
/// node at `v_out` (pass the *pull-up* expression, i.e. pdn.dual()).
[[nodiscard]] double pun_current(const PullExpr& expr, const MosParams& pmos, double w_um,
                                 Volt vdd, std::span<const double> slot_voltages,
                                 double v_out);

/// Where a stage input comes from.
struct StageSource {
  bool internal = false;  ///< true: output of a previous stage of this cell
  int index = 0;          ///< pin index (external) or stage index (internal)
};

/// One primitive stage of a cell's analog expansion.
struct StageTemplate {
  PullExpr pdn = PullExpr::leaf(0);
  std::vector<StageSource> sources;  ///< one per input slot
  double wn_mult = 1.0;  ///< NMOS width multiplier (stack compensation)
  double wp_mult = 1.0;
};

/// Expansion of `kind` into stages; the last stage drives the cell output.
[[nodiscard]] std::vector<StageTemplate> expand_cell(CellKind kind);

}  // namespace halotis
