// Transient (and DC) transistor-level simulator: the repository's stand-in
// for HSPICE (see DESIGN.md, substitution table).
//
// The digital netlist is expanded cell-by-cell into complementary CMOS
// stages (pull_network.hpp); every stage output is a nodal ODE
//     C * dV/dt = I_pullup(V, inputs) - I_pulldown(V, inputs)
// integrated with classical RK4 at a fixed step.  Primary inputs are ideal
// piecewise-linear voltage sources built from the same Stimulus object the
// logic simulator consumes, so both engines see identical excitation.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/analog/pull_network.hpp"
#include "src/base/units.hpp"
#include "src/core/stimulus.hpp"
#include "src/netlist/netlist.hpp"
#include "src/waveform/analog_trace.hpp"

namespace halotis {

struct AnalogConfig {
  TimeNs dt = 0.002;        ///< integration step, ns
  TimeNs sample_dt = 0.02;  ///< trace sampling period, ns
  TechnologyParams tech = TechnologyParams::u6();
};

class AnalogSim {
 public:
  /// `netlist` must outlive the simulator.
  explicit AnalogSim(const Netlist& netlist, AnalogConfig config = {});

  /// Builds the piecewise-linear sources and the DC initial state.
  /// Must be called exactly once before run().
  void apply_stimulus(const Stimulus& stimulus);

  /// Integrates from the current time to `t_end`.
  void run(TimeNs t_end);

  [[nodiscard]] const AnalogTrace& trace(SignalId signal) const;
  [[nodiscard]] Volt voltage(SignalId signal) const;
  [[nodiscard]] TimeNs now() const { return now_; }
  [[nodiscard]] std::uint64_t steps() const { return steps_; }
  [[nodiscard]] std::uint64_t stage_evals() const { return stage_evals_; }
  [[nodiscard]] const TechnologyParams& tech() const { return config_.tech; }

  /// DC operating point with primary inputs held at `pi_voltages`
  /// (aligned with netlist.primary_inputs()).  Relaxation sweeps of
  /// per-stage bisection solves; returns all node voltages indexed by
  /// signal id for external nodes.  Independent of apply_stimulus().
  [[nodiscard]] std::vector<Volt> dc_solve(std::span<const Volt> pi_voltages,
                                           int max_sweeps = 400) const;

 private:
  struct Stage {
    PullExpr pdn;
    PullExpr pun;
    std::vector<int> input_nodes;
    int output_node = 0;
    double wn_um = 1.0;
    double wp_um = 1.0;
  };
  struct PwlSource {
    std::vector<std::pair<TimeNs, Volt>> points;  // sorted by time
    [[nodiscard]] Volt at(TimeNs t) const;
  };

  void build_circuit();
  /// Writes dV/dt into `dv`; primary-input nodes get 0 (source-driven).
  void derivatives(TimeNs t, std::vector<double>& v, std::vector<double>& dv) const;
  void set_sources(TimeNs t, std::vector<double>& v) const;
  [[nodiscard]] double stage_net_current(const Stage& stage, std::span<const double> v,
                                         double v_out) const;

  const Netlist* netlist_;
  AnalogConfig config_;
  int num_nodes_ = 0;       // external signals first, then internals
  std::vector<Stage> stages_;
  std::vector<double> cap_;                 // pF per node
  std::vector<bool> is_source_;             // true for primary-input nodes
  std::unordered_map<int, PwlSource> sources_;
  std::vector<double> v_;                   // node voltages
  std::vector<AnalogTrace> traces_;         // one per external signal
  TimeNs now_ = 0.0;
  TimeNs next_sample_ = 0.0;
  bool stimulus_applied_ = false;
  mutable std::uint64_t stage_evals_ = 0;
  std::uint64_t steps_ = 0;

  // scratch buffers for RK4 (avoid per-step allocation)
  mutable std::vector<double> k1_, k2_, k3_, k4_, tmp_;
};

}  // namespace halotis
