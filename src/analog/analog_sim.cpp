#include "src/analog/analog_sim.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "src/base/check.hpp"

namespace halotis {

namespace {

/// Leaf occurrences per slot (a slot reused in the expression contributes
/// gate capacitance once per device).
void count_leaves(const PullExpr& expr, std::vector<int>& counts) {
  switch (expr.kind()) {
    case PullExpr::Kind::kLeaf:
      if (expr.slot() >= static_cast<int>(counts.size())) {
        counts.resize(static_cast<std::size_t>(expr.slot()) + 1, 0);
      }
      ++counts[static_cast<std::size_t>(expr.slot())];
      break;
    default:
      for (const PullExpr& c : expr.children()) count_leaves(c, counts);
  }
}

}  // namespace

Volt AnalogSim::PwlSource::at(TimeNs t) const {
  if (points.empty()) return 0.0;
  if (t <= points.front().first) return points.front().second;
  if (t >= points.back().first) return points.back().second;
  // Linear scan is fine: sources are consulted in increasing time and have
  // few breakpoints; binary search keeps worst cases tame anyway.
  const auto it = std::upper_bound(
      points.begin(), points.end(), t,
      [](TimeNs value, const std::pair<TimeNs, Volt>& p) { return value < p.first; });
  const auto& hi = *it;
  const auto& lo = *(it - 1);
  if (hi.first <= lo.first) return hi.second;
  const double frac = (t - lo.first) / (hi.first - lo.first);
  return lo.second + (hi.second - lo.second) * frac;
}

AnalogSim::AnalogSim(const Netlist& netlist, AnalogConfig config)
    : netlist_(&netlist), config_(config) {
  require(config_.dt > 0.0, "AnalogConfig::dt must be positive");
  require(config_.sample_dt >= config_.dt, "AnalogConfig::sample_dt must be >= dt");
  netlist_->check();
  build_circuit();
}

void AnalogSim::build_circuit() {
  const auto num_signals = static_cast<int>(netlist_->num_signals());
  num_nodes_ = num_signals;
  cap_.assign(static_cast<std::size_t>(num_signals), 0.0);
  is_source_.assign(static_cast<std::size_t>(num_signals), false);

  for (int s = 0; s < num_signals; ++s) {
    const SignalId sid{static_cast<SignalId::underlying_type>(s)};
    cap_[static_cast<std::size_t>(s)] =
        netlist_->signal(sid).wire_cap + config_.tech.node_floor_cap;
    is_source_[static_cast<std::size_t>(s)] = netlist_->signal(sid).is_primary_input;
  }

  const double ff = 1e-3;  // fF -> pF
  for (std::size_t g = 0; g < netlist_->num_gates(); ++g) {
    const GateId gid{static_cast<GateId::underlying_type>(g)};
    const Gate& gate = netlist_->gate(gid);
    const Cell& cell = netlist_->cell_of(gid);
    const std::vector<StageTemplate> templates = expand_cell(cell.kind);

    // Allocate internal nodes: one per non-final stage.
    std::vector<int> stage_node(templates.size());
    for (std::size_t t = 0; t < templates.size(); ++t) {
      if (t + 1 == templates.size()) {
        stage_node[t] = static_cast<int>(gate.output.value());
      } else {
        stage_node[t] = num_nodes_++;
        cap_.push_back(config_.tech.node_floor_cap);
        is_source_.push_back(false);
      }
    }

    for (std::size_t t = 0; t < templates.size(); ++t) {
      const StageTemplate& tpl = templates[t];
      Stage stage;
      stage.pdn = tpl.pdn;
      stage.pun = tpl.pdn.dual();
      stage.output_node = stage_node[t];
      stage.wn_um = cell.sizing.wn_um * tpl.wn_mult;
      stage.wp_um = cell.sizing.wp_um * tpl.wp_mult;
      for (const StageSource& src : tpl.sources) {
        if (src.internal) {
          ensure(src.index < static_cast<int>(t),
                 "AnalogSim: stage sources must reference earlier stages");
          stage.input_nodes.push_back(stage_node[static_cast<std::size_t>(src.index)]);
        } else {
          stage.input_nodes.push_back(
              static_cast<int>(gate.inputs[static_cast<std::size_t>(src.index)].value()));
        }
      }

      // Capacitance contributions: drain cap at the output, gate cap at
      // each input (per leaf occurrence).
      cap_[static_cast<std::size_t>(stage.output_node)] +=
          config_.tech.cd_ff_per_um * (stage.wn_um + stage.wp_um) * ff;
      std::vector<int> leaf_counts;
      count_leaves(stage.pdn, leaf_counts);
      for (std::size_t slot = 0; slot < stage.input_nodes.size(); ++slot) {
        const int count = slot < leaf_counts.size() ? leaf_counts[slot] : 0;
        cap_[static_cast<std::size_t>(stage.input_nodes[slot])] +=
            config_.tech.cg_ff_per_um * (stage.wn_um + stage.wp_um) * ff *
            static_cast<double>(count);
      }
      stages_.push_back(std::move(stage));
    }
  }

  v_.assign(static_cast<std::size_t>(num_nodes_), 0.0);
  k1_.resize(v_.size());
  k2_.resize(v_.size());
  k3_.resize(v_.size());
  k4_.resize(v_.size());
  tmp_.resize(v_.size());
  traces_.assign(netlist_->num_signals(), AnalogTrace{});
}

void AnalogSim::apply_stimulus(const Stimulus& stimulus) {
  require(!stimulus_applied_, "AnalogSim::apply_stimulus(): stimulus already applied");
  stimulus_applied_ = true;
  const Volt vdd = config_.tech.vdd;

  // Sources.
  for (SignalId pi : netlist_->primary_inputs()) {
    PwlSource source;
    Volt level = stimulus.initial_value(pi) ? vdd : 0.0;
    source.points.emplace_back(-1.0, level);
    for (const StimulusEdge& edge : stimulus.edges(pi)) {
      const TimeNs tau = edge.tau > 0.0 ? edge.tau : stimulus.default_slew();
      TimeNs t_begin = edge.time - 0.5 * tau;
      if (t_begin < source.points.back().first) t_begin = source.points.back().first;
      const Volt target = edge.value ? vdd : 0.0;
      source.points.emplace_back(t_begin, level);
      source.points.emplace_back(std::max(t_begin + 1e-6, edge.time + 0.5 * tau), target);
      level = target;
    }
    sources_.emplace(static_cast<int>(pi.value()), std::move(source));
  }

  // DC initial state from the digital steady state (rails), then internal
  // stage nodes by boolean evaluation in construction order.
  const auto pis = netlist_->primary_inputs();
  std::vector<bool> pi_bits(pis.size());
  std::unique_ptr<bool[]> buffer(new bool[pis.empty() ? 1 : pis.size()]);
  for (std::size_t i = 0; i < pis.size(); ++i) buffer[i] = stimulus.initial_value(pis[i]);
  const std::vector<bool> steady =
      netlist_->steady_state(std::span<const bool>(buffer.get(), pis.size()));
  for (std::size_t s = 0; s < netlist_->num_signals(); ++s) {
    v_[s] = steady[s] ? vdd : 0.0;
  }
  // Internal nodes: every stage output is !(PDN conducts).  External nodes
  // are pinned to the digital steady state (authoritative, handles
  // feedback); a pass in stage order then settles cell-internal nodes,
  // which only depend on external nodes and earlier stages of their cell.
  const auto num_external = static_cast<int>(netlist_->num_signals());
  for (const Stage& stage : stages_) {
    bool slots[8] = {};
    ensure(stage.input_nodes.size() <= std::size(slots), "AnalogSim: too many slots");
    for (std::size_t i = 0; i < stage.input_nodes.size(); ++i) {
      slots[i] = v_[static_cast<std::size_t>(stage.input_nodes[i])] > 0.5 * vdd;
    }
    const bool conducts =
        stage.pdn.conducts(std::span<const bool>(slots, stage.input_nodes.size()));
    if (stage.output_node >= num_external) {
      v_[static_cast<std::size_t>(stage.output_node)] = conducts ? 0.0 : vdd;
    }
  }
  set_sources(0.0, v_);

  // Trace headers.
  for (std::size_t s = 0; s < netlist_->num_signals(); ++s) {
    traces_[s] = AnalogTrace(0.0, config_.sample_dt);
    traces_[s].push_back(v_[s]);
  }
  next_sample_ = config_.sample_dt;
}

void AnalogSim::set_sources(TimeNs t, std::vector<double>& v) const {
  for (const auto& [node, source] : sources_) {
    v[static_cast<std::size_t>(node)] = source.at(t);
  }
}

double AnalogSim::stage_net_current(const Stage& stage, std::span<const double> v,
                                    double v_out) const {
  ++stage_evals_;
  double slots[8];
  ensure(stage.input_nodes.size() <= std::size(slots), "AnalogSim: too many slots");
  for (std::size_t i = 0; i < stage.input_nodes.size(); ++i) {
    slots[i] = v[static_cast<std::size_t>(stage.input_nodes[i])];
  }
  const std::span<const double> slot_span(slots, stage.input_nodes.size());
  const double iup = pun_current(stage.pun, config_.tech.pmos, stage.wp_um,
                                 config_.tech.vdd, slot_span, v_out);
  const double idn = pdn_current(stage.pdn, config_.tech.nmos, stage.wn_um, slot_span,
                                 v_out);
  return iup - idn;
}

void AnalogSim::derivatives(TimeNs t, std::vector<double>& v, std::vector<double>& dv) const {
  set_sources(t, v);
  std::fill(dv.begin(), dv.end(), 0.0);
  for (const Stage& stage : stages_) {
    const auto out = static_cast<std::size_t>(stage.output_node);
    dv[out] += stage_net_current(stage, v, v[out]) / cap_[out];
  }
  for (std::size_t n = 0; n < dv.size(); ++n) {
    if (n < is_source_.size() && is_source_[n]) dv[n] = 0.0;
  }
}

void AnalogSim::run(TimeNs t_end) {
  require(stimulus_applied_, "AnalogSim::run(): apply_stimulus() first");
  const double dt = config_.dt;
  const Volt vdd = config_.tech.vdd;
  while (now_ < t_end - 1e-12) {
    // Classical RK4 on V' = f(t, V).
    derivatives(now_, v_, k1_);
    for (std::size_t i = 0; i < v_.size(); ++i) tmp_[i] = v_[i] + 0.5 * dt * k1_[i];
    derivatives(now_ + 0.5 * dt, tmp_, k2_);
    for (std::size_t i = 0; i < v_.size(); ++i) tmp_[i] = v_[i] + 0.5 * dt * k2_[i];
    derivatives(now_ + 0.5 * dt, tmp_, k3_);
    for (std::size_t i = 0; i < v_.size(); ++i) tmp_[i] = v_[i] + dt * k3_[i];
    derivatives(now_ + dt, tmp_, k4_);
    for (std::size_t i = 0; i < v_.size(); ++i) {
      v_[i] += dt / 6.0 * (k1_[i] + 2.0 * k2_[i] + 2.0 * k3_[i] + k4_[i]);
      v_[i] = std::clamp(v_[i], -0.2, vdd + 0.2);
    }
    now_ += dt;
    ++steps_;
    set_sources(now_, v_);

    if (now_ + 1e-12 >= next_sample_) {
      for (std::size_t s = 0; s < netlist_->num_signals(); ++s) {
        traces_[s].push_back(v_[s]);
      }
      next_sample_ += config_.sample_dt;
    }
  }
}

const AnalogTrace& AnalogSim::trace(SignalId signal) const {
  require(signal.valid() && signal.value() < traces_.size(),
          "AnalogSim::trace(): invalid signal");
  return traces_[signal.value()];
}

Volt AnalogSim::voltage(SignalId signal) const {
  require(signal.valid() && signal.value() < netlist_->num_signals(),
          "AnalogSim::voltage(): invalid signal");
  return v_[signal.value()];
}

std::vector<Volt> AnalogSim::dc_solve(std::span<const Volt> pi_voltages,
                                      int max_sweeps) const {
  const auto pis = netlist_->primary_inputs();
  require(pi_voltages.size() == pis.size(), "AnalogSim::dc_solve(): PI count mismatch");
  const Volt vdd = config_.tech.vdd;

  std::vector<double> v(static_cast<std::size_t>(num_nodes_), 0.5 * vdd);
  for (std::size_t i = 0; i < pis.size(); ++i) {
    v[pis[i].value()] = pi_voltages[i];
  }

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double max_delta = 0.0;
    for (const Stage& stage : stages_) {
      const auto out = static_cast<std::size_t>(stage.output_node);
      if (out < is_source_.size() && is_source_[out]) continue;
      // Bisection on the monotone-decreasing net current f(v_out).
      double lo = 0.0;
      double hi = vdd;
      for (int iter = 0; iter < 60; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (stage_net_current(stage, v, mid) > 0.0) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      const double solution = 0.5 * (lo + hi);
      max_delta = std::max(max_delta, std::abs(solution - v[out]));
      v[out] = solution;
    }
    if (max_delta < 1e-7) break;
  }

  std::vector<Volt> result(netlist_->num_signals());
  for (std::size_t s = 0; s < result.size(); ++s) result[s] = v[s];
  return result;
}

}  // namespace halotis
