// MOSFET device models for the reference electrical simulator.
//
// Shichman-Hodges (square-law) models with channel-length modulation are
// sufficient here: the experiments need the *qualitative* electrical
// behaviour that gate-level delay models abstract away -- partially charged
// output nodes, pulse degradation, input-threshold discrimination -- all of
// which emerge from any saturating nonlinear pull device into a capacitor.
//
// Unit system: volts, milliamperes, picofarads, nanoseconds (so that
// dV/dt = I/C holds without conversion factors).
#pragma once

#include "src/base/check.hpp"
#include "src/base/units.hpp"

namespace halotis {

/// Square-law parameters of one device polarity.
struct MosParams {
  double k_prime = 0.040;  ///< transconductance k' = mu*Cox, mA/V^2
  Volt vt = 0.8;           ///< |threshold voltage|, V
  double lambda = 0.05;    ///< channel-length modulation, 1/V
  double l_um = 0.6;       ///< channel length, um
};

/// Process data for the analog expansion.
struct TechnologyParams {
  Volt vdd = 5.0;
  MosParams nmos{0.040, 0.80, 0.05, 0.6};
  MosParams pmos{0.016, 0.90, 0.05, 0.6};
  double cg_ff_per_um = 2.0;  ///< gate capacitance per um of device width
  double cd_ff_per_um = 1.1;  ///< drain (output) capacitance per um of width
  Farad node_floor_cap = 0.002;  ///< minimum node capacitance, pF

  /// The 0.6 um-class operating point matching Library::default_u6().
  [[nodiscard]] static TechnologyParams u6() { return TechnologyParams{}; }
};

/// Drain current of an NMOS with grounded source.  `vgs`, `vds` in volts;
/// returns mA (>= 0; no reverse conduction, junction diodes ignored).
[[nodiscard]] double nmos_current(const MosParams& p, double w_um, double vgs, double vds);

/// Source-to-drain current of a PMOS with source at `vdd`.  `vg` and `vd`
/// are node voltages; returns mA flowing *into* the drain node (>= 0).
[[nodiscard]] double pmos_current(const MosParams& p, double w_um, Volt vdd, double vg,
                                  double vd);

}  // namespace halotis
