#include "src/analog/pull_network.hpp"

#include <algorithm>

#include "src/base/check.hpp"

namespace halotis {

PullExpr PullExpr::leaf(int slot) {
  require(slot >= 0, "PullExpr::leaf(): slot must be non-negative");
  PullExpr e;
  e.kind_ = Kind::kLeaf;
  e.slot_ = slot;
  return e;
}

PullExpr PullExpr::series(std::vector<PullExpr> children) {
  require(children.size() >= 2, "PullExpr::series(): needs at least two children");
  PullExpr e;
  e.kind_ = Kind::kSeries;
  e.children_ = std::move(children);
  return e;
}

PullExpr PullExpr::parallel(std::vector<PullExpr> children) {
  require(children.size() >= 2, "PullExpr::parallel(): needs at least two children");
  PullExpr e;
  e.kind_ = Kind::kParallel;
  e.children_ = std::move(children);
  return e;
}

PullExpr PullExpr::dual() const {
  switch (kind_) {
    case Kind::kLeaf:
      return *this;
    case Kind::kSeries: {
      std::vector<PullExpr> duals;
      duals.reserve(children_.size());
      for (const PullExpr& c : children_) duals.push_back(c.dual());
      return parallel(std::move(duals));
    }
    case Kind::kParallel: {
      std::vector<PullExpr> duals;
      duals.reserve(children_.size());
      for (const PullExpr& c : children_) duals.push_back(c.dual());
      return series(std::move(duals));
    }
  }
  ensure(false, "PullExpr::dual(): unreachable");
  return *this;
}

bool PullExpr::conducts(std::span<const bool> slot_values) const {
  switch (kind_) {
    case Kind::kLeaf:
      require(slot_ < static_cast<int>(slot_values.size()),
              "PullExpr::conducts(): slot out of range");
      return slot_values[static_cast<std::size_t>(slot_)];
    case Kind::kSeries:
      return std::all_of(children_.begin(), children_.end(),
                         [&](const PullExpr& c) { return c.conducts(slot_values); });
    case Kind::kParallel:
      return std::any_of(children_.begin(), children_.end(),
                         [&](const PullExpr& c) { return c.conducts(slot_values); });
  }
  return false;
}

int PullExpr::max_slot() const {
  switch (kind_) {
    case Kind::kLeaf:
      return slot_ + 1;
    case Kind::kSeries:
    case Kind::kParallel: {
      int m = 0;
      for (const PullExpr& c : children_) m = std::max(m, c.max_slot());
      return m;
    }
  }
  return 0;
}

namespace {

constexpr double kCurrentEpsMa = 1e-9;

/// Recursive current composition.  `leaf_current(slot, v_span)` evaluates
/// one device with the full span voltage across it; series combination is
/// harmonic (current-limited), parallel additive.
template <class LeafFn>
double compose_current(const PullExpr& expr, const LeafFn& leaf_current, double v_span) {
  switch (expr.kind()) {
    case PullExpr::Kind::kLeaf:
      return leaf_current(expr.slot(), v_span);
    case PullExpr::Kind::kSeries: {
      double inv_sum = 0.0;
      for (const PullExpr& c : expr.children()) {
        const double i = compose_current(c, leaf_current, v_span);
        if (i <= kCurrentEpsMa) return 0.0;
        inv_sum += 1.0 / i;
      }
      return 1.0 / inv_sum;
    }
    case PullExpr::Kind::kParallel: {
      double sum = 0.0;
      for (const PullExpr& c : expr.children()) {
        sum += compose_current(c, leaf_current, v_span);
      }
      return sum;
    }
  }
  return 0.0;
}

}  // namespace

double pdn_current(const PullExpr& expr, const MosParams& nmos, double w_um,
                   std::span<const double> slot_voltages, double v_out) {
  if (v_out <= 0.0) return 0.0;
  const auto leaf = [&](int slot, double v_span) {
    require(slot < static_cast<int>(slot_voltages.size()),
            "pdn_current(): slot out of range");
    return nmos_current(nmos, w_um, slot_voltages[static_cast<std::size_t>(slot)], v_span);
  };
  return compose_current(expr, leaf, v_out);
}

double pun_current(const PullExpr& expr, const MosParams& pmos, double w_um, Volt vdd,
                   std::span<const double> slot_voltages, double v_out) {
  if (v_out >= vdd) return 0.0;
  const auto leaf = [&](int slot, double v_span) {
    require(slot < static_cast<int>(slot_voltages.size()),
            "pun_current(): slot out of range");
    // v_span here is vdd - v_out across the whole pull-up.
    return nmos_current(pmos, w_um, vdd - slot_voltages[static_cast<std::size_t>(slot)],
                        v_span);
  };
  return compose_current(expr, leaf, vdd - v_out);
}

namespace {

StageSource pin(int index) { return StageSource{false, index}; }
StageSource internal(int index) { return StageSource{true, index}; }

StageTemplate inv_stage(StageSource src) {
  StageTemplate s;
  s.pdn = PullExpr::leaf(0);
  s.sources = {src};
  return s;
}

StageTemplate nand_stage(std::vector<StageSource> sources) {
  StageTemplate s;
  std::vector<PullExpr> leaves;
  for (int i = 0; i < static_cast<int>(sources.size()); ++i) {
    leaves.push_back(PullExpr::leaf(i));
  }
  s.pdn = PullExpr::series(std::move(leaves));
  s.wn_mult = static_cast<double>(sources.size());
  s.sources = std::move(sources);
  return s;
}

StageTemplate nor_stage(std::vector<StageSource> sources) {
  StageTemplate s;
  std::vector<PullExpr> leaves;
  for (int i = 0; i < static_cast<int>(sources.size()); ++i) {
    leaves.push_back(PullExpr::leaf(i));
  }
  s.pdn = PullExpr::parallel(std::move(leaves));
  s.wp_mult = static_cast<double>(sources.size());
  s.sources = std::move(sources);
  return s;
}

std::vector<StageSource> pins(int n) {
  std::vector<StageSource> sources;
  for (int i = 0; i < n; ++i) sources.push_back(pin(i));
  return sources;
}

/// NAND-only XOR: n1 = NAND(a,b); n2 = NAND(a,n1); n3 = NAND(n1,b);
/// y = NAND(n2,n3).  `base` is the index of the first emitted stage;
/// a/b given as generic sources so XOR3 can cascade.
void append_xor2(std::vector<StageTemplate>& stages, StageSource a, StageSource b) {
  const int base = static_cast<int>(stages.size());
  stages.push_back(nand_stage({a, b}));                               // base+0: n1
  stages.push_back(nand_stage({a, internal(base)}));                  // base+1: n2
  stages.push_back(nand_stage({internal(base), b}));                  // base+2: n3
  stages.push_back(nand_stage({internal(base + 1), internal(base + 2)}));  // y
}

/// NOR-only XNOR (same structure, dual stages).
void append_xnor2(std::vector<StageTemplate>& stages, StageSource a, StageSource b) {
  const int base = static_cast<int>(stages.size());
  stages.push_back(nor_stage({a, b}));
  stages.push_back(nor_stage({a, internal(base)}));
  stages.push_back(nor_stage({internal(base), b}));
  stages.push_back(nor_stage({internal(base + 1), internal(base + 2)}));
}

}  // namespace

std::vector<StageTemplate> expand_cell(CellKind kind) {
  std::vector<StageTemplate> stages;
  switch (kind) {
    case CellKind::kInv:
      stages.push_back(inv_stage(pin(0)));
      break;
    case CellKind::kBuf:
      stages.push_back(inv_stage(pin(0)));
      stages.push_back(inv_stage(internal(0)));
      break;
    case CellKind::kNand2:
      stages.push_back(nand_stage(pins(2)));
      break;
    case CellKind::kNand3:
      stages.push_back(nand_stage(pins(3)));
      break;
    case CellKind::kNand4:
      stages.push_back(nand_stage(pins(4)));
      break;
    case CellKind::kNor2:
      stages.push_back(nor_stage(pins(2)));
      break;
    case CellKind::kNor3:
      stages.push_back(nor_stage(pins(3)));
      break;
    case CellKind::kNor4:
      stages.push_back(nor_stage(pins(4)));
      break;
    case CellKind::kAnd2:
      stages.push_back(nand_stage(pins(2)));
      stages.push_back(inv_stage(internal(0)));
      break;
    case CellKind::kAnd3:
      stages.push_back(nand_stage(pins(3)));
      stages.push_back(inv_stage(internal(0)));
      break;
    case CellKind::kAnd4:
      stages.push_back(nand_stage(pins(4)));
      stages.push_back(inv_stage(internal(0)));
      break;
    case CellKind::kOr2:
      stages.push_back(nor_stage(pins(2)));
      stages.push_back(inv_stage(internal(0)));
      break;
    case CellKind::kOr3:
      stages.push_back(nor_stage(pins(3)));
      stages.push_back(inv_stage(internal(0)));
      break;
    case CellKind::kOr4:
      stages.push_back(nor_stage(pins(4)));
      stages.push_back(inv_stage(internal(0)));
      break;
    case CellKind::kXor2:
      append_xor2(stages, pin(0), pin(1));
      break;
    case CellKind::kXnor2:
      append_xnor2(stages, pin(0), pin(1));
      break;
    case CellKind::kXor3: {
      append_xor2(stages, pin(0), pin(1));  // stages 0..3, x = stage 3
      append_xor2(stages, internal(3), pin(2));
      break;
    }
    case CellKind::kAoi21: {
      StageTemplate s;
      s.pdn = PullExpr::parallel(
          {PullExpr::series({PullExpr::leaf(0), PullExpr::leaf(1)}), PullExpr::leaf(2)});
      s.sources = pins(3);
      s.wn_mult = 2.0;
      s.wp_mult = 2.0;
      stages.push_back(std::move(s));
      break;
    }
    case CellKind::kAoi22: {
      StageTemplate s;
      s.pdn = PullExpr::parallel({PullExpr::series({PullExpr::leaf(0), PullExpr::leaf(1)}),
                                  PullExpr::series({PullExpr::leaf(2), PullExpr::leaf(3)})});
      s.sources = pins(4);
      s.wn_mult = 2.0;
      s.wp_mult = 2.0;
      stages.push_back(std::move(s));
      break;
    }
    case CellKind::kOai21: {
      StageTemplate s;
      s.pdn = PullExpr::series(
          {PullExpr::parallel({PullExpr::leaf(0), PullExpr::leaf(1)}), PullExpr::leaf(2)});
      s.sources = pins(3);
      s.wn_mult = 2.0;
      s.wp_mult = 2.0;
      stages.push_back(std::move(s));
      break;
    }
    case CellKind::kOai22: {
      StageTemplate s;
      s.pdn =
          PullExpr::series({PullExpr::parallel({PullExpr::leaf(0), PullExpr::leaf(1)}),
                            PullExpr::parallel({PullExpr::leaf(2), PullExpr::leaf(3)})});
      s.sources = pins(4);
      s.wn_mult = 2.0;
      s.wp_mult = 2.0;
      stages.push_back(std::move(s));
      break;
    }
    case CellKind::kMux2: {
      // sn = INV(s); y = INV(AOI22(a, sn, b, s)) -> out = a*!s + b*s.
      stages.push_back(inv_stage(pin(2)));  // stage 0: sn
      StageTemplate aoi;
      aoi.pdn = PullExpr::parallel({PullExpr::series({PullExpr::leaf(0), PullExpr::leaf(1)}),
                                    PullExpr::series({PullExpr::leaf(2), PullExpr::leaf(3)})});
      aoi.sources = {pin(0), internal(0), pin(1), pin(2)};
      aoi.wn_mult = 2.0;
      aoi.wp_mult = 2.0;
      stages.push_back(std::move(aoi));  // stage 1
      stages.push_back(inv_stage(internal(1)));
      break;
    }
    case CellKind::kMaj3: {
      // !maj = !(a*b + c*(a+b)); out = INV(that).
      StageTemplate s;
      s.pdn = PullExpr::parallel(
          {PullExpr::series({PullExpr::leaf(0), PullExpr::leaf(1)}),
           PullExpr::series({PullExpr::leaf(2),
                             PullExpr::parallel({PullExpr::leaf(0), PullExpr::leaf(1)})})});
      s.sources = pins(3);
      s.wn_mult = 2.0;
      s.wp_mult = 2.0;
      stages.push_back(std::move(s));
      stages.push_back(inv_stage(internal(0)));
      break;
    }
  }
  ensure(!stages.empty(), "expand_cell(): no expansion for cell kind");
  return stages;
}

}  // namespace halotis
