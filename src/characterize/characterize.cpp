#include "src/characterize/characterize.hpp"

#include <cmath>
#include <string>

#include "src/base/check.hpp"
#include "src/base/mathfit.hpp"

namespace halotis {

namespace {

constexpr TimeNs kSettle = 4.0;  ///< quiet time before the first edge, ns

/// Output midswing-crossing instants, via the sampled trace.
std::vector<TimeNs> output_crossings(const AnalogSim& sim, SignalId out, Edge sense,
                                     Volt vdd) {
  return sim.trace(out).crossings(0.5 * vdd, sense);
}

}  // namespace

CellBench make_cell_bench(const Library& lib, std::string_view cell_name, Farad extra_load) {
  CellBench bench(lib);
  const CellId cell_id = lib.find(cell_name);
  const Cell& cell = lib.cell(cell_id);
  for (int i = 0; i < num_inputs(cell.kind); ++i) {
    bench.pins.push_back(bench.netlist.add_primary_input("p" + std::to_string(i)));
  }
  bench.out = bench.netlist.add_signal("out");
  bench.netlist.mark_primary_output(bench.out);
  (void)bench.netlist.add_gate("dut", cell_id, bench.pins, bench.out);
  bench.netlist.set_wire_cap(bench.out, extra_load);
  return bench;
}

std::vector<bool> sensitizing_assignment(const Cell& cell, int pin, Edge in_edge) {
  const int n = num_inputs(cell.kind);
  require(pin >= 0 && pin < n, "sensitizing_assignment(): pin out of range");
  for (unsigned pattern = 0; pattern < (1u << n); ++pattern) {
    bool low[8];
    bool high[8];
    for (int i = 0; i < n; ++i) {
      low[i] = ((pattern >> i) & 1u) != 0;
      high[i] = low[i];
    }
    low[pin] = false;
    high[pin] = true;
    const std::span<const bool> low_span(low, static_cast<std::size_t>(n));
    const std::span<const bool> high_span(high, static_cast<std::size_t>(n));
    if (eval_cell(cell.kind, low_span) != eval_cell(cell.kind, high_span)) {
      std::vector<bool> assignment(low, low + n);
      // The switching pin starts at the pre-transition value.
      assignment[static_cast<std::size_t>(pin)] = (in_edge == Edge::kFall);
      return assignment;
    }
  }
  require(false, "sensitizing_assignment(): pin never controls the output");
  return {};
}

DelayMeasurement measure_delay(const Library& lib, std::string_view cell_name, int pin,
                               Edge in_edge, Farad extra_load, TimeNs tau_in,
                               const AnalogConfig& cfg) {
  CellBench bench = make_cell_bench(lib, cell_name, extra_load);
  const Cell& cell = lib.cell(lib.find(cell_name));
  const Volt vdd = lib.vdd();

  const std::vector<bool> assignment = sensitizing_assignment(cell, pin, in_edge);
  Stimulus stim(tau_in);
  for (std::size_t i = 0; i < bench.pins.size(); ++i) {
    stim.set_initial(bench.pins[i], assignment[i]);
  }
  const TimeNs t_edge = kSettle + 0.5 * tau_in;
  stim.add_edge(bench.pins[static_cast<std::size_t>(pin)], t_edge,
                in_edge == Edge::kRise, tau_in);

  AnalogSim sim(bench.netlist, cfg);
  sim.apply_stimulus(stim);
  sim.run(t_edge + tau_in + 6.0);

  // Output sense: how the cell output moves when the pin takes its final
  // value.
  bool before[8];
  bool after[8];
  for (std::size_t i = 0; i < assignment.size(); ++i) before[i] = after[i] = assignment[i];
  after[pin] = (in_edge == Edge::kRise);
  const std::span<const bool> before_span(before, assignment.size());
  const std::span<const bool> after_span(after, assignment.size());
  const bool out_after = eval_cell(cell.kind, after_span);
  ensure(eval_cell(cell.kind, before_span) != out_after,
         "measure_delay(): assignment is not sensitizing");
  const Edge out_edge = out_after ? Edge::kRise : Edge::kFall;

  const auto crossings = output_crossings(sim, bench.out, out_edge, vdd);
  require(!crossings.empty(),
          std::string("measure_delay(): output never crossed midswing for ") +
              std::string(cell_name));

  DelayMeasurement result;
  result.out_edge = out_edge;
  result.tp = crossings.front() - t_edge;

  // 20 %-80 % slope scaled to full swing.
  const Volt v20 = (out_edge == Edge::kRise ? 0.2 : 0.8) * vdd;
  const Volt v80 = (out_edge == Edge::kRise ? 0.8 : 0.2) * vdd;
  const auto c20 = sim.trace(bench.out).crossings(v20, out_edge);
  const auto c80 = sim.trace(bench.out).crossings(v80, out_edge);
  if (!c20.empty() && !c80.empty() && c80.front() > c20.front()) {
    result.tau_out = (c80.front() - c20.front()) / 0.6;
  }
  return result;
}

std::vector<DegradationPoint> measure_degradation(const Library& lib,
                                                  std::string_view cell_name, int pin,
                                                  Edge in_edge, Farad extra_load,
                                                  TimeNs tau_in,
                                                  std::span<const TimeNs> pulse_widths,
                                                  const AnalogConfig& cfg) {
  const Cell& cell = lib.cell(lib.find(cell_name));
  const Volt vdd = lib.vdd();
  const std::vector<bool> assignment = sensitizing_assignment(cell, pin, in_edge);

  std::vector<DegradationPoint> points;
  for (const TimeNs width : pulse_widths) {
    CellBench bench = make_cell_bench(lib, cell_name, extra_load);
    Stimulus stim(tau_in);
    for (std::size_t i = 0; i < bench.pins.size(); ++i) {
      stim.set_initial(bench.pins[i], assignment[i]);
    }
    const TimeNs t1 = kSettle + 0.5 * tau_in;
    const TimeNs t2 = t1 + width;
    stim.add_edge(bench.pins[static_cast<std::size_t>(pin)], t1, in_edge == Edge::kRise,
                  tau_in);
    stim.add_edge(bench.pins[static_cast<std::size_t>(pin)], t2, in_edge == Edge::kFall,
                  tau_in);

    AnalogSim sim(bench.netlist, cfg);
    sim.apply_stimulus(stim);
    sim.run(t2 + tau_in + 8.0);

    // First output edge responds to `in_edge`, second to the opposite.
    bool buffer[8];
    for (std::size_t i = 0; i < assignment.size(); ++i) buffer[i] = assignment[i];
    buffer[pin] = (in_edge == Edge::kRise);
    const bool mid_value =
        eval_cell(cell.kind, std::span<const bool>(buffer, assignment.size()));
    const Edge first_out = mid_value ? Edge::kRise : Edge::kFall;
    const Edge second_out = opposite(first_out);

    const auto first_crossings = output_crossings(sim, bench.out, first_out, vdd);
    const auto second_crossings = output_crossings(sim, bench.out, second_out, vdd);

    DegradationPoint point;
    if (first_crossings.empty() || second_crossings.empty() ||
        second_crossings.front() <= first_crossings.front()) {
      point.filtered = true;
      point.t_elapsed = first_crossings.empty() ? 0.0 : t2 - first_crossings.front();
    } else {
      point.t_elapsed = t2 - first_crossings.front();
      point.tp = second_crossings.front() - t2;
    }
    points.push_back(point);
  }
  return points;
}

DegradationFit fit_degradation(std::span<const DegradationPoint> points, TimeNs tp0) {
  require(tp0 > 0.0, "fit_degradation(): tp0 must be positive");
  std::vector<double> xs;
  std::vector<double> ys;
  for (const DegradationPoint& p : points) {
    if (p.filtered || p.tp <= 0.0) continue;
    const double ratio = p.tp / tp0;
    if (ratio >= 0.999) continue;  // fully settled: log() blows up, no info
    xs.push_back(p.t_elapsed);
    ys.push_back(std::log(1.0 - ratio));
  }
  DegradationFit fit;
  fit.points_used = static_cast<int>(xs.size());
  if (xs.size() < 2) return fit;
  const LinearFit line = fit_line(xs, ys);
  if (line.slope >= 0.0) return fit;  // no degradation detected
  fit.tau = -1.0 / line.slope;
  fit.t0 = line.intercept * fit.tau;
  fit.r_squared = line.r_squared;
  return fit;
}

MacroModelFit fit_tp0(const Library& lib, std::string_view cell_name, int pin, Edge in_edge,
                      std::span<const Farad> loads, std::span<const TimeNs> slews,
                      const AnalogConfig& cfg) {
  require(loads.size() >= 2 && slews.size() >= 2,
          "fit_tp0(): need at least a 2x2 load x slew grid");
  // The regression is against the *digital* load definition (fanout +
  // wire + driver parasitic) so the fitted coefficients drop straight into
  // the EdgeTiming macro-model.
  std::vector<std::vector<double>> rows;
  std::vector<double> delays;
  for (const Farad load : loads) {
    for (const TimeNs slew : slews) {
      const DelayMeasurement m = measure_delay(lib, cell_name, pin, in_edge, load, slew, cfg);
      CellBench bench = make_cell_bench(lib, cell_name, load);
      const Farad cl = bench.netlist.load_of(bench.out);
      rows.push_back({1.0, cl, slew});
      delays.push_back(m.tp);
    }
  }
  const std::vector<double> coeffs = fit_least_squares(rows, delays);
  MacroModelFit fit;
  fit.p0 = coeffs[0];
  fit.p_load = coeffs[1];
  fit.p_slew = coeffs[2];
  std::vector<double> predicted;
  predicted.reserve(rows.size());
  for (const auto& row : rows) {
    predicted.push_back(coeffs[0] * row[0] + coeffs[1] * row[1] + coeffs[2] * row[2]);
  }
  fit.r_squared = r_squared(predicted, delays);
  return fit;
}

namespace {

/// Pulse widths spanning the degraded regime at one operating point: the
/// informative region starts just above the first-edge delay and ends once
/// the gate has recovered (a few output time constants later).
std::vector<TimeNs> auto_widths(TimeNs tp_first_edge) {
  std::vector<TimeNs> widths;
  for (const double factor : {1.25, 1.45, 1.7, 2.0, 2.4, 3.0, 3.8, 5.0}) {
    widths.push_back(std::max(0.05, tp_first_edge) * factor);
  }
  return widths;
}

}  // namespace

Eq2Fit fit_eq2(const Library& lib, std::string_view cell_name, int pin, Edge in_edge,
               std::span<const Farad> loads, TimeNs tau_in,
               std::span<const TimeNs> pulse_widths, const AnalogConfig& cfg) {
  require(loads.size() >= 2, "fit_eq2(): need at least two loads");
  std::vector<double> cls;
  std::vector<double> tau_vdd;
  for (const Farad load : loads) {
    // The degraded edge of the pulse is the *second* one (opposite sense).
    const DelayMeasurement first =
        measure_delay(lib, cell_name, pin, in_edge, load, tau_in, cfg);
    const DelayMeasurement settled =
        measure_delay(lib, cell_name, pin, opposite(in_edge), load, tau_in, cfg);
    const std::vector<TimeNs> local_widths =
        pulse_widths.empty() ? auto_widths(first.tp)
                             : std::vector<TimeNs>(pulse_widths.begin(), pulse_widths.end());
    const auto points = measure_degradation(lib, cell_name, pin, in_edge, load, tau_in,
                                            local_widths, cfg);
    const DegradationFit fit = fit_degradation(points, settled.tp);
    if (fit.points_used < 2 || fit.tau <= 0.0) continue;
    CellBench bench = make_cell_bench(lib, cell_name, load);
    cls.push_back(bench.netlist.load_of(bench.out));
    tau_vdd.push_back(fit.tau * lib.vdd());
  }
  Eq2Fit result;
  if (cls.size() < 2) return result;
  const LinearFit line = fit_line(cls, tau_vdd);
  result.a = line.intercept;
  result.b = line.slope;
  result.r_squared = line.r_squared;
  return result;
}

Eq3Fit fit_eq3(const Library& lib, std::string_view cell_name, int pin, Edge in_edge,
               Farad extra_load, std::span<const TimeNs> slews,
               std::span<const TimeNs> pulse_widths, const AnalogConfig& cfg) {
  require(slews.size() >= 2, "fit_eq3(): need at least two slews");
  // T0 = (1/2 - C/VDD) * tau_in: regress T0 against tau_in through the
  // origin; the slope gives C.
  std::vector<double> xs;
  std::vector<double> ys;
  for (const TimeNs slew : slews) {
    const DelayMeasurement first =
        measure_delay(lib, cell_name, pin, in_edge, extra_load, slew, cfg);
    const DelayMeasurement settled =
        measure_delay(lib, cell_name, pin, opposite(in_edge), extra_load, slew, cfg);
    const std::vector<TimeNs> local_widths =
        pulse_widths.empty() ? auto_widths(first.tp)
                             : std::vector<TimeNs>(pulse_widths.begin(), pulse_widths.end());
    const auto points = measure_degradation(lib, cell_name, pin, in_edge, extra_load, slew,
                                            local_widths, cfg);
    const DegradationFit fit = fit_degradation(points, settled.tp);
    if (fit.points_used < 2) continue;
    xs.push_back(slew);
    ys.push_back(fit.t0);
  }
  Eq3Fit result;
  if (xs.size() < 2) return result;
  // Least squares through the origin: slope = sum(xy)/sum(xx).
  double sxy = 0.0;
  double sxx = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += xs[i] * ys[i];
    sxx += xs[i] * xs[i];
  }
  const double slope = sxy / sxx;  // = 1/2 - C/VDD
  result.c = (0.5 - slope) * lib.vdd();
  std::vector<double> predicted;
  for (const double x : xs) predicted.push_back(slope * x);
  result.r_squared = r_squared(predicted, ys);
  return result;
}

Volt measure_vm(const Library& lib, std::string_view cell_name, int pin) {
  CellBench bench = make_cell_bench(lib, cell_name, 0.02);
  const Cell& cell = lib.cell(lib.find(cell_name));
  const Volt vdd = lib.vdd();
  const std::vector<bool> assignment = sensitizing_assignment(cell, pin, Edge::kRise);

  AnalogSim sim(bench.netlist);
  std::vector<Volt> pi_voltages(bench.pins.size());
  for (std::size_t i = 0; i < bench.pins.size(); ++i) {
    pi_voltages[i] = assignment[i] ? vdd : 0.0;
  }

  // Output polarity vs the pin: rising input gives which output value?
  bool buffer[8];
  for (std::size_t i = 0; i < assignment.size(); ++i) buffer[i] = assignment[i];
  buffer[pin] = true;
  const bool out_high_when_pin_high =
      eval_cell(cell.kind, std::span<const bool>(buffer, assignment.size()));

  Volt lo = 0.0;
  Volt hi = vdd;
  for (int iter = 0; iter < 40; ++iter) {
    const Volt mid = 0.5 * (lo + hi);
    pi_voltages[static_cast<std::size_t>(pin)] = mid;
    const auto solution = sim.dc_solve(pi_voltages);
    const bool out_high = solution[bench.out.value()] > 0.5 * vdd;
    if (out_high == out_high_when_pin_high) {
      hi = mid;  // pin already past its threshold
    } else {
      lo = mid;
    }
  }
  return 0.5 * (lo + hi);
}

Library characterize_library(const Library& lib,
                             std::span<const std::string_view> cell_names,
                             const CharacterizeOptions& options) {
  Library fitted = lib;
  std::vector<std::string> names;
  if (cell_names.empty()) {
    for (const Cell& cell : lib.cells()) names.push_back(cell.name);
  } else {
    for (const std::string_view name : cell_names) names.emplace_back(name);
  }

  for (const std::string& name : names) {
    const CellId id = fitted.find(name);
    Cell& cell = fitted.mutable_cell(id);
    for (int pin = 0; pin < num_inputs(cell.kind); ++pin) {
      if (options.fit_thresholds) {
        cell.pins[static_cast<std::size_t>(pin)].vt = measure_vm(lib, name, pin);
      }
      for (const Edge in_edge : {Edge::kRise, Edge::kFall}) {
        // Input rise drives output fall for inverting paths; the fit is
        // stored under the *output* edge like EdgeTiming expects.
        const DelayMeasurement probe =
            measure_delay(lib, name, pin, in_edge, options.loads.front(),
                          options.slews.front(), options.analog);
        EdgeTiming& timing =
            cell.pins[static_cast<std::size_t>(pin)].edge(probe.out_edge);
        if (options.fit_delay) {
          const MacroModelFit fit = fit_tp0(lib, name, pin, in_edge, options.loads,
                                            options.slews, options.analog);
          timing.p0 = fit.p0;
          timing.p_load = fit.p_load;
          timing.p_slew = fit.p_slew;
        }
        if (options.fit_degradation) {
          const Eq2Fit eq2 = fit_eq2(lib, name, pin, in_edge, options.loads,
                                     options.slews[options.slews.size() / 2],
                                     options.pulse_widths, options.analog);
          if (eq2.r_squared > 0.0 && eq2.a > 0.0) {
            timing.deg_a = eq2.a;
            timing.deg_b = std::max(0.0, eq2.b);
          }
          const Eq3Fit eq3 = fit_eq3(lib, name, pin, in_edge, options.loads.front(),
                                     options.slews, options.pulse_widths, options.analog);
          if (eq3.r_squared > 0.0) {
            timing.deg_c = eq3.c;
          }
        }
      }
    }
  }
  return fitted;
}

}  // namespace halotis
