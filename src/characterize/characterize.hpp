// Cell characterization against the analog reference simulator.
//
// This module reproduces the flow the paper's authors used to obtain their
// model parameters from HSPICE (refs [15]-[17]):
//   1. tp0 macro-model    -- isolated-transition delays over a load x slew
//                            grid, least squares for p0 + p_load*CL +
//                            p_slew*tau_in,
//   2. degradation curve  -- input pulse-width sweep; the second output
//                            edge's delay tp(T) collapses onto the paper's
//                            eq. 1; linearizing ln(1 - tp/tp0) gives tau
//                            and T0,
//   3. eq. 2 / eq. 3      -- repeating (2) over loads and slews yields the
//                            (A, B) and C coefficients,
//   4. VT                 -- DC transfer sweep locates each pin's switching
//                            threshold.
#pragma once

#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "src/analog/analog_sim.hpp"
#include "src/netlist/library.hpp"
#include "src/netlist/netlist.hpp"

namespace halotis {

/// Single-cell measurement fixture: every pin a primary input, the output
/// loaded with `extra_load` of wire capacitance.
struct CellBench {
  Netlist netlist;
  std::vector<SignalId> pins;
  SignalId out;

  explicit CellBench(const Library& lib) : netlist(lib) {}
};
[[nodiscard]] CellBench make_cell_bench(const Library& lib, std::string_view cell_name,
                                        Farad extra_load);

/// Static side-input values that make `pin` control the output; throws if
/// the pin is redundant.  Returned vector excludes `pin` itself? No -- it
/// has one entry per pin; entry [pin] is the initial value of the switching
/// pin for `in_edge` (i.e. the pre-transition value).
[[nodiscard]] std::vector<bool> sensitizing_assignment(const Cell& cell, int pin,
                                                       Edge in_edge);

struct DelayMeasurement {
  TimeNs tp = 0.0;       ///< input t50 -> output t50
  TimeNs tau_out = 0.0;  ///< output ramp duration (20-80 % scaled to 0-100 %)
  Edge out_edge = Edge::kRise;
};

/// Measures one isolated transition through `cell` pin `pin`.
[[nodiscard]] DelayMeasurement measure_delay(const Library& lib, std::string_view cell_name,
                                             int pin, Edge in_edge, Farad extra_load,
                                             TimeNs tau_in, const AnalogConfig& cfg = {});

/// One point of the degradation experiment.
struct DegradationPoint {
  TimeNs t_elapsed = 0.0;  ///< T: second input t50 minus first output t50
  TimeNs tp = 0.0;         ///< measured second-edge delay
  bool filtered = false;   ///< output pulse never formed
};

/// Sweeps input pulse widths; the second edge of the pulse is the degraded
/// one.  `in_edge` is the *first* edge of the pulse.
[[nodiscard]] std::vector<DegradationPoint> measure_degradation(
    const Library& lib, std::string_view cell_name, int pin, Edge in_edge,
    Farad extra_load, TimeNs tau_in, std::span<const TimeNs> pulse_widths,
    const AnalogConfig& cfg = {});

struct DegradationFit {
  TimeNs tau = 0.0;  ///< eq. 1 time constant
  TimeNs t0 = 0.0;   ///< eq. 1 offset
  double r_squared = 0.0;
  int points_used = 0;
};

/// Linearized least-squares fit of eq. 1 to a measured degradation curve.
/// `tp0` is the settled delay of the same edge.
[[nodiscard]] DegradationFit fit_degradation(std::span<const DegradationPoint> points,
                                             TimeNs tp0);

/// Fits the tp0 macro-model over a load x slew grid.  Returns coefficients
/// (p0, p_load, p_slew) and the fit R^2.
struct MacroModelFit {
  double p0 = 0.0;
  double p_load = 0.0;
  double p_slew = 0.0;
  double r_squared = 0.0;
};
[[nodiscard]] MacroModelFit fit_tp0(const Library& lib, std::string_view cell_name, int pin,
                                    Edge in_edge, std::span<const Farad> loads,
                                    std::span<const TimeNs> slews,
                                    const AnalogConfig& cfg = {});

/// eq. 2: tau_deg * VDD = A + B * CL, fitted over `loads`.
struct Eq2Fit {
  double a = 0.0;
  double b = 0.0;
  double r_squared = 0.0;
};
[[nodiscard]] Eq2Fit fit_eq2(const Library& lib, std::string_view cell_name, int pin,
                             Edge in_edge, std::span<const Farad> loads, TimeNs tau_in,
                             std::span<const TimeNs> pulse_widths,
                             const AnalogConfig& cfg = {});

/// eq. 3: T0 = (1/2 - C/VDD) * tau_in, fitted over `slews`.
struct Eq3Fit {
  double c = 0.0;
  double r_squared = 0.0;
};
[[nodiscard]] Eq3Fit fit_eq3(const Library& lib, std::string_view cell_name, int pin,
                             Edge in_edge, Farad extra_load, std::span<const TimeNs> slews,
                             std::span<const TimeNs> pulse_widths,
                             const AnalogConfig& cfg = {});

/// DC switching threshold of `pin` (input voltage at which the cell output
/// crosses midswing), via bisection on the analog DC solver.
[[nodiscard]] Volt measure_vm(const Library& lib, std::string_view cell_name, int pin);

/// What characterize_library() refits.
struct CharacterizeOptions {
  bool fit_delay = true;
  bool fit_thresholds = true;
  bool fit_degradation = false;  ///< expensive: pulse sweeps per pin/edge
  std::vector<Farad> loads{0.02, 0.06, 0.12};
  std::vector<TimeNs> slews{0.2, 0.5, 1.0};
  std::vector<TimeNs> pulse_widths{0.4, 0.6, 0.8, 1.2, 1.8, 2.6};
  AnalogConfig analog;
};

/// Returns a copy of `lib` with the named cells' timing data refitted from
/// the analog simulator (all cells when `cell_names` is empty).
[[nodiscard]] Library characterize_library(const Library& lib,
                                           std::span<const std::string_view> cell_names,
                                           const CharacterizeOptions& options = {});

}  // namespace halotis
