// Deterministic experiment artifacts: CSV construction, content hashing,
// and the golden-hash file format.
//
// Every artifact a reproduction experiment emits is a plain byte string
// built exclusively from simulation results and fixed-precision number
// formatting -- no timestamps, wall times, paths, thread counts or other
// environment leakage -- so rerunning an experiment on any machine, at any
// worker-pool width, reproduces the identical bytes.  The 64-bit FNV-1a
// hash of those bytes is what the committed goldens pin.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace halotis::repro {

/// One deterministic output file of an experiment.
struct Artifact {
  std::string name;     ///< file name inside the experiment's output dir
  std::string content;  ///< exact bytes
};

/// 64-bit FNV-1a over `bytes`.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes);

/// 16 lower-case hex digits.
[[nodiscard]] std::string hash_hex(std::uint64_t hash);

/// Row-major CSV builder with fixed-precision numeric formatting (six
/// significant digits via format_double, the repo-wide convention).  Cells
/// must not contain commas or newlines -- artifacts are data series, not
/// quoted prose -- and every row must match the header width.
class CsvBuilder {
 public:
  explicit CsvBuilder(std::vector<std::string> header);

  CsvBuilder& cell(std::string_view text);
  CsvBuilder& cell(double value);
  CsvBuilder& cell(std::uint64_t value);
  CsvBuilder& cell(int value);
  void end_row();

  /// The finished CSV (header + rows, '\n' line endings).  Throws when a
  /// row is still open.
  [[nodiscard]] std::string str() const;

 private:
  std::size_t columns_;
  std::size_t open_cells_ = 0;
  std::string out_;
};

/// One golden binding: experiment id + artifact name -> content hash.
struct GoldenEntry {
  std::string experiment;
  std::string artifact;
  std::uint64_t hash = 0;

  friend bool operator==(const GoldenEntry&, const GoldenEntry&) = default;
};

/// Serializes entries as "<experiment> <artifact> <hash16>" lines -- the
/// HASHES.txt artifact and the committed golden file share this format.
[[nodiscard]] std::string format_goldens(const std::vector<GoldenEntry>& entries);

/// Parses the format above; '#' starts a comment, blank lines are skipped.
/// Throws ContractViolation on malformed lines.
[[nodiscard]] std::vector<GoldenEntry> parse_goldens(std::string_view text);

}  // namespace halotis::repro
