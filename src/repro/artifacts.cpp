#include "src/repro/artifacts.hpp"

#include "src/base/check.hpp"
#include "src/base/fnv.hpp"
#include "src/base/strings.hpp"

namespace halotis::repro {

std::uint64_t fnv1a64(std::string_view bytes) { return halotis::fnv1a64(bytes); }

std::string hash_hex(std::uint64_t hash) { return fnv_hex(hash); }

CsvBuilder::CsvBuilder(std::vector<std::string> header) : columns_(header.size()) {
  require(!header.empty(), "CsvBuilder: header must have at least one column");
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i > 0) out_ += ',';
    out_ += header[i];
  }
  out_ += '\n';
}

CsvBuilder& CsvBuilder::cell(std::string_view text) {
  require(text.find(',') == std::string_view::npos &&
              text.find('\n') == std::string_view::npos,
          "CsvBuilder::cell(): cells must not contain commas or newlines");
  require(open_cells_ < columns_, "CsvBuilder::cell(): row already full; call end_row()");
  if (open_cells_ > 0) out_ += ',';
  out_ += text;
  ++open_cells_;
  return *this;
}

CsvBuilder& CsvBuilder::cell(double value) { return cell(format_double(value, 6)); }

CsvBuilder& CsvBuilder::cell(std::uint64_t value) { return cell(std::to_string(value)); }

CsvBuilder& CsvBuilder::cell(int value) { return cell(std::to_string(value)); }

void CsvBuilder::end_row() {
  require(open_cells_ == columns_,
          "CsvBuilder::end_row(): row has fewer cells than the header");
  out_ += '\n';
  open_cells_ = 0;
}

std::string CsvBuilder::str() const {
  require(open_cells_ == 0, "CsvBuilder::str(): last row not finished with end_row()");
  return out_;
}

std::string format_goldens(const std::vector<GoldenEntry>& entries) {
  std::string out;
  for (const GoldenEntry& entry : entries) {
    out += entry.experiment;
    out += ' ';
    out += entry.artifact;
    out += ' ';
    out += hash_hex(entry.hash);
    out += '\n';
  }
  return out;
}

std::vector<GoldenEntry> parse_goldens(std::string_view text) {
  std::vector<GoldenEntry> entries;
  std::size_t line_no = 0;
  for (const std::string& line : split(text, '\n')) {
    ++line_no;
    const std::string_view trimmed = trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const std::vector<std::string> fields = split_whitespace(trimmed);
    require(fields.size() == 3, "golden file line " + std::to_string(line_no) +
                                    ": expected '<experiment> <artifact> <hash>'");
    GoldenEntry entry;
    entry.experiment = fields[0];
    entry.artifact = fields[1];
    require(fields[2].size() == 16, "golden file line " + std::to_string(line_no) +
                                        ": hash must be 16 hex digits");
    std::uint64_t hash = 0;
    for (const char c : fields[2]) {
      const bool digit = c >= '0' && c <= '9';
      const bool lower = c >= 'a' && c <= 'f';
      require(digit || lower, "golden file line " + std::to_string(line_no) +
                                  ": hash must be lower-case hex");
      hash = hash * 16 + static_cast<std::uint64_t>(digit ? c - '0' : c - 'a' + 10);
    }
    entry.hash = hash;
    entries.push_back(std::move(entry));
  }
  return entries;
}

}  // namespace halotis::repro
