#include "src/repro/experiment.hpp"

#include "src/base/check.hpp"

namespace halotis::repro {

void ExperimentRegistry::add(Experiment experiment) {
  require(!experiment.id.empty(), "ExperimentRegistry::add(): id must not be empty");
  require(static_cast<bool>(experiment.run),
          "ExperimentRegistry::add(): experiment '" + experiment.id + "' has no run body");
  require(find(experiment.id) == nullptr,
          "ExperimentRegistry::add(): duplicate experiment id '" + experiment.id + "'");
  experiments_.push_back(std::move(experiment));
}

const Experiment* ExperimentRegistry::find(std::string_view id) const {
  for (const Experiment& experiment : experiments_) {
    if (experiment.id == id) return &experiment;
  }
  return nullptr;
}

ExperimentRegistry ExperimentRegistry::builtin() {
  ExperimentRegistry registry;
  register_builtin_experiments(registry);
  return registry;
}

}  // namespace halotis::repro
