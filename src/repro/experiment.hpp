// The paper-reproduction experiment registry.
//
// Each registered Experiment names a figure or table of the HALOTIS paper
// (or a mechanism of section 3), builds its circuit from the src/circuits
// generators, runs it under the relevant delay models, and returns
// deterministic artifacts (CSV data series, VCD traces) plus the ordered
// metrics and narrative that the runner assembles into the Markdown
// report.  The registry is the canonical list `halotis repro` executes;
// tests/repro/golden_quick.txt pins every quick-mode artifact hash.
//
// Experiments must be pure functions of (context) -- deterministic,
// independent of each other, and safe to run concurrently on different
// worker threads (the runner shards them across a WorkerPool).
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/netlist/library.hpp"
#include "src/repro/artifacts.hpp"

namespace halotis::repro {

/// Inputs every experiment receives.
struct ExperimentContext {
  const Library& lib;  ///< the default characterized 0.6 um-class library
  /// Reduced sweeps / shorter sequences; the mode CI runs and the goldens
  /// pin.  Full mode adds rows (e.g. analog-reference sweeps) but must stay
  /// just as deterministic.
  bool quick = false;
};

/// What one experiment produced.
struct ExperimentResult {
  std::vector<Artifact> artifacts;
  /// Ordered key/value pairs rendered as the report's metrics table.  Keys
  /// are stable identifiers (golden-diffable via the artifacts that carry
  /// the same numbers); values are preformatted.
  std::vector<std::pair<std::string, std::string>> metrics;
  /// Markdown paragraph(s): what the experiment shows and how to read it.
  std::string narrative;

  void metric(std::string key, std::string value) {
    metrics.emplace_back(std::move(key), std::move(value));
  }
};

/// One registered reproduction experiment.
struct Experiment {
  std::string id;           ///< stable snake_case identifier (CLI --only)
  std::string title;
  std::string paper_ref;    ///< e.g. "Fig. 1", "Table 1", "sec. 3 / Fig. 4"
  std::string description;  ///< one line for `halotis repro --list`
  std::function<ExperimentResult(const ExperimentContext&)> run;
};

class ExperimentRegistry {
 public:
  /// Registers an experiment; ids must be unique and non-empty.
  void add(Experiment experiment);

  [[nodiscard]] const std::vector<Experiment>& experiments() const { return experiments_; }
  [[nodiscard]] const Experiment* find(std::string_view id) const;

  /// The built-in registry: the five paper experiments documented in
  /// docs/REPRODUCTION.md.
  [[nodiscard]] static ExperimentRegistry builtin();

 private:
  std::vector<Experiment> experiments_;
};

/// Populates `registry` with the built-in experiments (experiments.cpp).
void register_builtin_experiments(ExperimentRegistry& registry);

}  // namespace halotis::repro
