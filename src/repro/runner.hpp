// Executes registered experiments and assembles the reproduction report.
//
// Independent experiments are sharded across the shared WorkerPool (each
// one runs its own single-threaded simulations), outcomes land in
// registry-order slots, and the report/hash listings are assembled after
// the sweep -- so REPORT.md, HASHES.txt and every artifact byte are
// identical for any thread count, any scheduling, and any rerun.  Wall
// times and worker counts are deliberately absent from all outputs; they
// belong to the CLI's stdout.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/base/supervision.hpp"
#include "src/repro/experiment.hpp"

namespace halotis::repro {

struct RunOptions {
  bool quick = false;
  int threads = 0;                ///< WorkerPool width; 0 = hardware threads
  std::vector<std::string> only;  ///< experiment ids; empty = all registered
  /// Contents of a golden-hash file (parse_goldens format).  Empty = no
  /// comparison; the report then shows hashes without verdicts.
  std::string golden_text;
  /// Optional run supervision (must outlive the call).  Checked at the
  /// coarse boundary before each experiment; a deadline expiry or
  /// cancellation aborts the whole run -- run_experiments() rethrows the
  /// original RunError after in-flight experiments drain.  Any other
  /// failure inside an experiment is captured in its outcome, as before.
  const RunSupervisor* supervisor = nullptr;
};

/// Per-artifact golden verdict.
enum class GoldenStatus {
  kNotChecked,     ///< no golden file supplied
  kMatch,
  kMismatch,
  kMissingGolden,  ///< artifact produced but absent from the golden file
};

struct ArtifactRecord {
  std::string name;
  std::uint64_t hash = 0;
  std::size_t bytes = 0;
  GoldenStatus status = GoldenStatus::kNotChecked;
};

struct ExperimentOutcome {
  std::string id;
  std::string title;
  std::string paper_ref;
  ExperimentResult result;
  std::vector<ArtifactRecord> records;  ///< aligned with result.artifacts
  std::string error;                    ///< non-empty when run() threw

  [[nodiscard]] bool failed() const;  ///< error, mismatch or missing golden
};

struct RunReport {
  bool quick = false;
  std::vector<ExperimentOutcome> outcomes;  ///< registry order
  bool compared_goldens = false;
  std::size_t artifacts_total = 0;
  std::size_t golden_matches = 0;
  std::size_t golden_mismatches = 0;
  std::size_t golden_missing = 0;  ///< artifacts without a golden entry
  /// Golden entries no selected experiment regenerated.  Populated only
  /// when the full registry ran (an --only subset legitimately skips
  /// entries); stale entries fail the run so goldens cannot rot.
  std::vector<GoldenEntry> stale_goldens;

  [[nodiscard]] bool ok() const;
  /// Flat (experiment, artifact, hash) listing in run order -- the
  /// HASHES.txt artifact; byte-for-byte the committed golden format.
  [[nodiscard]] std::vector<GoldenEntry> hashes() const;
};

/// Runs the selected experiments.  Throws ContractViolation when an
/// `only` id is not registered or the golden text is malformed; an
/// exception *inside* an experiment is captured in its outcome instead.
[[nodiscard]] RunReport run_experiments(const ExperimentRegistry& registry,
                                        const RunOptions& options);

/// The generated Markdown report (deterministic; see header comment).
[[nodiscard]] std::string format_report_markdown(const RunReport& report);

}  // namespace halotis::repro
