#include "src/repro/runner.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <utility>

#include "src/base/check.hpp"
#include "src/base/worker_pool.hpp"

namespace halotis::repro {

namespace {

const char* status_label(GoldenStatus status) {
  switch (status) {
    case GoldenStatus::kNotChecked: return "-";
    case GoldenStatus::kMatch: return "match";
    case GoldenStatus::kMismatch: return "MISMATCH";
    case GoldenStatus::kMissingGolden: return "NO GOLDEN";
  }
  return "-";  // unreachable; keeps -Wreturn-type quiet.
}

}  // namespace

bool ExperimentOutcome::failed() const {
  if (!error.empty()) return true;
  for (const ArtifactRecord& record : records) {
    if (record.status == GoldenStatus::kMismatch ||
        record.status == GoldenStatus::kMissingGolden) {
      return true;
    }
  }
  return false;
}

bool RunReport::ok() const {
  if (!stale_goldens.empty()) return false;
  for (const ExperimentOutcome& outcome : outcomes) {
    if (outcome.failed()) return false;
  }
  return true;
}

std::vector<GoldenEntry> RunReport::hashes() const {
  std::vector<GoldenEntry> entries;
  for (const ExperimentOutcome& outcome : outcomes) {
    for (const ArtifactRecord& record : outcome.records) {
      entries.push_back(GoldenEntry{outcome.id, record.name, record.hash});
    }
  }
  return entries;
}

RunReport run_experiments(const ExperimentRegistry& registry, const RunOptions& options) {
  // Resolve the selection up front (registry order, so --only a,b == --only b,a).
  std::vector<const Experiment*> selected;
  if (options.only.empty()) {
    for (const Experiment& experiment : registry.experiments()) {
      selected.push_back(&experiment);
    }
  } else {
    for (const std::string& id : options.only) {
      const Experiment* experiment = registry.find(id);
      require(experiment != nullptr, "unknown experiment '" + id +
                                         "' (halotis repro --list shows registered ids)");
    }
    for (const Experiment& experiment : registry.experiments()) {
      for (const std::string& id : options.only) {
        if (experiment.id == id) {
          selected.push_back(&experiment);
          break;
        }
      }
    }
  }

  const std::vector<GoldenEntry> goldens = parse_goldens(options.golden_text);
  // A supplied golden file that pins nothing would turn the diff gate into
  // a vacuous pass (e.g. a truncated-to-comments golden_quick.txt); fail
  // loudly instead.
  require(options.golden_text.empty() || !goldens.empty(),
          "golden file contains no hash entries -- refusing a vacuous comparison");

  RunReport report;
  report.quick = options.quick;
  report.compared_goldens = !goldens.empty();
  report.outcomes.resize(selected.size());

  const Library lib = Library::default_u6();
  const ExperimentContext context{lib, options.quick};

  // Supervision: a deadline expiry / cancellation aborts the whole run --
  // recorded once and rethrown below so the caller sees the original
  // RunError (never a WorkerPoolError wrapper); every other failure inside
  // an experiment stays captured in its outcome.
  std::atomic<bool> sup_stopped{false};
  std::mutex sup_mutex;
  std::exception_ptr sup_error;  // guarded by sup_mutex
  const auto record_sup_stop = [&] {
    std::lock_guard<std::mutex> lock(sup_mutex);
    if (!sup_error) sup_error = std::current_exception();
    sup_stopped.store(true, std::memory_order_relaxed);
  };

  WorkerPool pool(options.threads);
  pool.for_each_index(selected.size(), [&](int /*worker*/, std::size_t index) {
    const Experiment& experiment = *selected[index];
    ExperimentOutcome& outcome = report.outcomes[index];
    outcome.id = experiment.id;
    outcome.title = experiment.title;
    outcome.paper_ref = experiment.paper_ref;
    if (sup_stopped.load(std::memory_order_relaxed)) return;  // fast drain
    try {
      if (options.supervisor != nullptr) {
        options.supervisor->check_coarse("repro experiment");
      }
      outcome.result = experiment.run(context);
    } catch (const RunError& e) {
      if (e.kind() == RunErrorKind::kDeadlineExceeded ||
          e.kind() == RunErrorKind::kCancelled) {
        record_sup_stop();
        return;
      }
      outcome.error = e.what();
    } catch (const std::exception& e) {
      outcome.error = e.what();
    }
  });
  {
    std::lock_guard<std::mutex> lock(sup_mutex);
    if (sup_error) std::rethrow_exception(sup_error);
  }

  // Hash and (optionally) verify every artifact, in deterministic order.
  for (ExperimentOutcome& outcome : report.outcomes) {
    for (const Artifact& artifact : outcome.result.artifacts) {
      ArtifactRecord record;
      record.name = artifact.name;
      record.hash = fnv1a64(artifact.content);
      record.bytes = artifact.content.size();
      if (report.compared_goldens) {
        record.status = GoldenStatus::kMissingGolden;
        for (const GoldenEntry& golden : goldens) {
          if (golden.experiment == outcome.id && golden.artifact == record.name) {
            record.status = golden.hash == record.hash ? GoldenStatus::kMatch
                                                       : GoldenStatus::kMismatch;
            break;
          }
        }
      }
      ++report.artifacts_total;
      report.golden_matches += record.status == GoldenStatus::kMatch ? 1 : 0;
      report.golden_mismatches += record.status == GoldenStatus::kMismatch ? 1 : 0;
      report.golden_missing += record.status == GoldenStatus::kMissingGolden ? 1 : 0;
      outcome.records.push_back(std::move(record));
    }
  }

  // A full-registry run must also account for every golden entry: a golden
  // nothing regenerates is stale (renamed artifact, deleted experiment).
  if (report.compared_goldens && options.only.empty()) {
    for (const GoldenEntry& golden : goldens) {
      bool produced = false;
      for (const ExperimentOutcome& outcome : report.outcomes) {
        for (const ArtifactRecord& record : outcome.records) {
          if (outcome.id == golden.experiment && record.name == golden.artifact) {
            produced = true;
            break;
          }
        }
      }
      if (!produced) report.stale_goldens.push_back(golden);
    }
  }
  return report;
}

std::string format_report_markdown(const RunReport& report) {
  std::string out;
  out += "# HALOTIS paper-reproduction report\n\n";
  out += "Mode: ";
  out += report.quick ? "quick" : "full";
  out += ". Experiments: " + std::to_string(report.outcomes.size()) + ". ";
  if (report.compared_goldens) {
    out += "Golden hashes: " + std::to_string(report.golden_matches) + "/" +
           std::to_string(report.artifacts_total) + " match";
    if (report.golden_mismatches > 0) {
      out += ", " + std::to_string(report.golden_mismatches) + " MISMATCH";
    }
    if (report.golden_missing > 0) {
      out += ", " + std::to_string(report.golden_missing) + " without golden";
    }
    if (!report.stale_goldens.empty()) {
      out += ", " + std::to_string(report.stale_goldens.size()) + " stale golden";
    }
    out += ".";
  } else {
    out += "Golden hashes: not compared.";
  }
  out += " Overall: ";
  out += report.ok() ? "PASS" : "FAIL";
  out += ".\n";

  for (const ExperimentOutcome& outcome : report.outcomes) {
    out += "\n## " + outcome.title + " (`" + outcome.id + "`)\n\n";
    out += "Reproduces: paper " + outcome.paper_ref + ".\n";
    if (!outcome.error.empty()) {
      out += "\n**ERROR:** " + outcome.error + "\n";
      continue;
    }
    if (!outcome.result.narrative.empty()) {
      out += "\n" + outcome.result.narrative + "\n";
    }
    if (!outcome.result.metrics.empty()) {
      out += "\n| metric | value |\n|---|---|\n";
      for (const auto& [key, value] : outcome.result.metrics) {
        out += "| " + key + " | " + value + " |\n";
      }
    }
    if (!outcome.records.empty()) {
      out += "\n| artifact | bytes | fnv1a-64 | golden |\n|---|---|---|---|\n";
      for (const ArtifactRecord& record : outcome.records) {
        out += "| " + record.name + " | " + std::to_string(record.bytes) + " | `" +
               hash_hex(record.hash) + "` | " + status_label(record.status) + " |\n";
      }
    }
  }

  if (!report.stale_goldens.empty()) {
    out += "\n## Stale golden entries\n\n";
    out += "Committed goldens no experiment regenerated (update "
           "tests/repro/golden_quick.txt):\n\n";
    for (const GoldenEntry& golden : report.stale_goldens) {
      out += "* `" + golden.experiment + " " + golden.artifact + " " +
             hash_hex(golden.hash) + "`\n";
    }
  }
  return out;
}

}  // namespace halotis::repro
