// The built-in paper experiments (see docs/REPRODUCTION.md for the
// experiment-to-figure map and how to add one).
//
// Every experiment body is a pure function of the context: fixed seeds,
// fixed sweeps, fixed-precision formatting, and no environment leakage
// into artifacts.  Quick mode shrinks sweeps and skips the analog
// (transistor-level) reference where it dominates runtime; the committed
// goldens pin quick mode, CI diffs them on every push.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/analog/analog_sim.hpp"
#include "src/base/rng.hpp"
#include "src/base/strings.hpp"
#include "src/characterize/characterize.hpp"
#include "src/circuits/generators.hpp"
#include "src/circuits/stimuli.hpp"
#include "src/core/delay_model.hpp"
#include "src/core/simulator.hpp"
#include "src/power/activity.hpp"
#include "src/repro/experiment.hpp"
#include "src/sta/sta.hpp"
#include "src/waveform/vcd.hpp"

namespace halotis::repro {

namespace {

const char* edge_name(Edge edge) { return edge == Edge::kRise ? "rise" : "fall"; }

// ---- 1. delay vs input slope ------------------------------------------------
//
// The tp0 macro-model underneath eq. 1 (paper section 2, refs [1, 2]):
// isolated-transition delay as a function of the input ramp duration,
// model prediction vs the transistor-level reference.

ExperimentResult run_delay_vs_slope(const ExperimentContext& ctx) {
  const std::vector<TimeNs> slews =
      ctx.quick ? std::vector<TimeNs>{0.3, 0.6, 1.0}
                : std::vector<TimeNs>{0.2, 0.3, 0.45, 0.6, 0.8, 1.0};
  struct Target {
    const char* cell;
    Edge in_edge;
  };
  std::vector<Target> targets{{"INV_X1", Edge::kFall}, {"NAND2_X1", Edge::kFall}};
  if (!ctx.quick) {
    targets.push_back({"INV_X1", Edge::kRise});
    targets.push_back({"NAND2_X1", Edge::kRise});
  }
  const Farad extra_load = 0.06;

  CsvBuilder csv({"cell", "pin", "in_edge", "tau_in_ns", "tp_model_ns", "tau_out_model_ns",
                  "tp_analog_ns", "tau_out_analog_ns", "tp_err_pct"});
  double max_abs_err = 0.0;
  int rows = 0;
  for (const Target& target : targets) {
    const Cell& cell = ctx.lib.cell(ctx.lib.find(target.cell));
    const CellBench bench = make_cell_bench(ctx.lib, target.cell, extra_load);
    const Farad cl = bench.netlist.load_of(bench.out);
    const Edge out_edge =
        is_inverting(cell.kind) ? opposite(target.in_edge) : target.in_edge;
    for (const TimeNs tau_in : slews) {
      const EdgeTiming& timing = cell.pin(0).edge(out_edge);
      const TimeNs tp_model = timing.tp0(cl, tau_in);
      const TimeNs tau_out_model = cell.drive.tau_out(out_edge, cl);
      const DelayMeasurement analog =
          measure_delay(ctx.lib, target.cell, 0, target.in_edge, extra_load, tau_in);
      const double err = 100.0 * (tp_model - analog.tp) / analog.tp;
      max_abs_err = std::max(max_abs_err, std::abs(err));
      csv.cell(target.cell).cell(0).cell(edge_name(target.in_edge)).cell(tau_in);
      csv.cell(tp_model).cell(tau_out_model).cell(analog.tp).cell(analog.tau_out).cell(err);
      csv.end_row();
      ++rows;
    }
  }

  ExperimentResult result;
  result.artifacts.push_back(Artifact{"delay_vs_slope.csv", csv.str()});
  result.metric("points", std::to_string(rows));
  result.metric("max_abs_tp_error_pct", format_double(max_abs_err, 4));
  result.narrative =
      "Isolated-transition propagation delay over an input-slope sweep: the "
      "conventional macro-model `tp0 = p0 + p_load*CL + p_slew*tau_in` that eq. 1 "
      "degrades, against the transistor-level reference (the HSPICE stand-in). "
      "The model tracks the reference within a few percent across the slew range "
      "-- the baseline accuracy on which the degradation comparison stands.";
  return result;
}

// ---- 2. pulse degradation / glitch filtering (Fig. 1) -----------------------
//
// The paper's headline experiment: a degraded runt pulse must drive the
// low-threshold receiver chain (g1) while staying invisible to the
// high-threshold one (g2).  The conventional inertial model cannot
// discriminate -- it filters (or passes) at the output, for both chains.

Stimulus fig1_pulse(const Fig1Circuit& fx, TimeNs width) {
  Stimulus stim(0.5);
  stim.set_initial(fx.in, true);
  stim.add_edge(fx.in, 5.0, false);
  stim.add_edge(fx.in, 5.0 + width, true);
  return stim;
}

const char* fig1_shape(std::size_t out1c_edges, std::size_t out2c_edges) {
  if (out1c_edges > 0 && out2c_edges == 0) return "g1-only";
  if (out1c_edges > 0) return "both";
  if (out2c_edges == 0) return "neither";
  return "g2-only";
}

ExperimentResult run_glitch_filtering_sweep(const ExperimentContext& ctx) {
  const std::vector<TimeNs> widths =
      ctx.quick ? std::vector<TimeNs>{0.4, 0.6, 0.8, 0.9, 1.0, 1.2}
                : std::vector<TimeNs>{0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2, 1.5, 2.0};

  const DdmDelayModel ddm;
  const CdmDelayModel cdm;  // transport-like, the paper's observed CDM
  const CdmDelayModel cdm_classical(CdmDelayModel::InertialWindow::kGateDelay);
  struct ModelRow {
    const char* name;
    const DelayModel* model;
  };
  const ModelRow models[] = {
      {"ddm", &ddm}, {"cdm", &cdm}, {"cdm-classical", &cdm_classical}};

  CsvBuilder csv({"width_ns", "model", "out0_edges", "out1c_edges", "out2c_edges",
                  "shape", "filtered_events", "out0_pulse_ns"});
  int ddm_g1_only = 0;
  int cdm_g1_only = 0;
  int classical_g1_only = 0;
  for (const TimeNs width : widths) {
    Fig1Circuit fx = make_fig1(ctx.lib);
    for (const ModelRow& row : models) {
      Simulator sim(fx.netlist, *row.model);
      sim.apply_stimulus(fig1_pulse(fx, width));
      (void)sim.run();
      const auto out0 = sim.history(fx.out0);
      const std::size_t out1c = sim.history(fx.out1c).size();
      const std::size_t out2c = sim.history(fx.out2c).size();
      const TimeNs out0_pulse =
          out0.size() == 2 ? out0[1].t50() - out0[0].t50() : 0.0;
      const char* shape = fig1_shape(out1c, out2c);
      csv.cell(width).cell(row.name).cell(std::uint64_t{out0.size()});
      csv.cell(std::uint64_t{out1c}).cell(std::uint64_t{out2c}).cell(shape);
      csv.cell(sim.stats().filtered_events()).cell(out0_pulse);
      csv.end_row();
      if (std::string_view(shape) == "g1-only") {
        if (row.model == &ddm) ++ddm_g1_only;
        if (row.model == &cdm) ++cdm_g1_only;
        if (row.model == &cdm_classical) ++classical_g1_only;
      }
    }
    if (!ctx.quick) {
      AnalogSim analog(fx.netlist);
      analog.apply_stimulus(fig1_pulse(fx, width));
      analog.run(18.0);
      const Volt vdd = ctx.lib.vdd();
      const std::size_t out0 = analog.trace(fx.out0).digitize(vdd).edge_count();
      const std::size_t out1c = analog.trace(fx.out1c).digitize(vdd).edge_count();
      const std::size_t out2c = analog.trace(fx.out2c).digitize(vdd).edge_count();
      csv.cell(width).cell("analog-ref").cell(std::uint64_t{out0});
      csv.cell(std::uint64_t{out1c}).cell(std::uint64_t{out2c});
      csv.cell(fig1_shape(out1c, out2c)).cell(std::uint64_t{0}).cell(0.0);
      csv.end_row();
    }
  }

  // The closed-form eq. 1 degradation curve of the driver cell: how much of
  // the conventional delay remains as a function of the internal-state time
  // T (normalized; T0 and tau from the characterized INV_X1 coefficients).
  CsvBuilder curve({"t_ns", "tp_over_tp0"});
  {
    const Cell& inv = ctx.lib.cell(ctx.lib.find("INV_X1"));
    const EdgeTiming& timing = inv.pin(0).edge(Edge::kRise);
    const Farad cl = 0.06;
    const TimeNs tau_in = 0.5;
    const TimeNs tau = timing.deg_tau(cl, ctx.lib.vdd());
    const TimeNs t0 = timing.deg_t0(tau_in, ctx.lib.vdd());
    const int points = 25;
    for (int i = 0; i <= points; ++i) {
      const TimeNs t = t0 + 5.0 * tau * static_cast<double>(i) / points;
      const double ratio = 1.0 - std::exp(-(t - t0) / tau);
      curve.cell(t).cell(std::max(ratio, 0.0));
      curve.end_row();
    }
  }

  // Paper-style waveforms at a width inside the discrimination band.
  Fig1Circuit fx = make_fig1(ctx.lib);
  Simulator sim(fx.netlist, ddm);
  sim.apply_stimulus(fig1_pulse(fx, 0.9));
  (void)sim.run();
  const SignalId signals[] = {fx.in, fx.out0, fx.out1, fx.out1c, fx.out2, fx.out2c};
  const std::string vcd = vcd_from_simulator(sim, signals, "fig1_ddm").to_string();

  ExperimentResult result;
  result.artifacts.push_back(Artifact{"glitch_filtering_sweep.csv", csv.str()});
  result.artifacts.push_back(Artifact{"ddm_eq1_curve.csv", curve.str()});
  result.artifacts.push_back(Artifact{"fig1_ddm_w0.9.vcd", vcd});
  result.metric("widths", std::to_string(widths.size()));
  result.metric("ddm_g1_only_widths", std::to_string(ddm_g1_only));
  result.metric("cdm_g1_only_widths", std::to_string(cdm_g1_only));
  result.metric("cdm_classical_g1_only_widths", std::to_string(classical_g1_only));
  result.narrative =
      "Input pulse-width sweep through the Fig. 1 circuit: a three-inverter "
      "driver whose degraded output fans out to a low-threshold (g1) and a "
      "high-threshold (g2) receiver chain.  `shape` records which chains saw the "
      "pulse.  The DDM shows a band of widths where only g1 responds (per-input "
      "threshold filtering of a degraded ramp); both conventional variants "
      "propagate to both chains or to neither.  `ddm_eq1_curve.csv` is the "
      "closed-form eq. 1 degradation curve of the driver cell; the VCD holds the "
      "DDM waveforms at the discriminating 0.9 ns width.";
  return result;
}

// ---- 3. multiplier glitch activity (Table 1 at 8x8) -------------------------

ExperimentResult run_mult8_glitch_activity(const ExperimentContext& ctx) {
  const int bits = 8;
  const std::size_t num_words = ctx.quick ? 8 : 32;
  MultiplierCircuit mult = make_multiplier(ctx.lib, bits);
  const auto words = random_word_stream(2 * bits, num_words, 0x5851F42D4C957F2DULL);

  const DdmDelayModel ddm;
  const CdmDelayModel cdm;
  const std::vector<TimeNs> bin_edges{0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0};

  CsvBuilder summary({"model", "events_processed", "filtered_events",
                      "surviving_transitions", "glitch_transitions",
                      "glitch_fraction_pct", "energy_pj", "glitch_energy_pj"});
  std::vector<std::vector<std::uint64_t>> histograms;
  std::uint64_t ddm_events = 0, cdm_events = 0;
  std::uint64_t ddm_filtered = 0, cdm_filtered = 0;
  std::uint64_t ddm_glitch = 0, cdm_glitch = 0;
  std::string top_csv;
  std::string vcd;
  for (const bool is_cdm : {false, true}) {
    const DelayModel& model =
        is_cdm ? static_cast<const DelayModel&>(cdm) : static_cast<const DelayModel&>(ddm);
    Simulator sim(mult.netlist, model);
    sim.apply_stimulus(multiplier_stimulus(mult, words));
    (void)sim.run();
    const ActivityReport activity = compute_activity(sim, 1.0);
    summary.cell(is_cdm ? "cdm" : "ddm").cell(sim.stats().events_processed);
    summary.cell(sim.stats().filtered_events()).cell(sim.stats().surviving_transitions());
    summary.cell(activity.total_glitch_transitions);
    summary.cell(100.0 * activity.glitch_fraction());
    summary.cell(activity.total_energy_pj).cell(activity.glitch_energy_pj);
    summary.end_row();
    histograms.push_back(pulse_width_histogram(sim, bin_edges));
    (is_cdm ? cdm_events : ddm_events) = sim.stats().events_processed;
    (is_cdm ? cdm_filtered : ddm_filtered) = sim.stats().filtered_events();
    (is_cdm ? cdm_glitch : ddm_glitch) = activity.total_glitch_transitions;

    if (!is_cdm) {
      // Top energy consumers under the DDM (stable order: energy desc, then
      // signal id -- per_signal is already in id order).
      std::vector<const SignalActivity*> rows;
      for (const SignalActivity& a : activity.per_signal) {
        if (a.transitions > 0) rows.push_back(&a);
      }
      std::stable_sort(rows.begin(), rows.end(),
                       [](const SignalActivity* a, const SignalActivity* b) {
                         return a->energy_pj > b->energy_pj;
                       });
      if (rows.size() > 12) rows.resize(12);
      CsvBuilder top({"signal", "transitions", "glitch_transitions", "energy_pj"});
      for (const SignalActivity* a : rows) {
        top.cell(a->name).cell(std::uint64_t{a->transitions});
        top.cell(std::uint64_t{a->glitch_transitions}).cell(a->energy_pj);
        top.end_row();
      }
      top_csv = top.str();
      vcd = vcd_from_simulator(sim, mult.s, "mult8_ddm_product").to_string();
    }
  }

  CsvBuilder histogram({"pulse_width_bin_ns", "ddm_pulses", "cdm_pulses"});
  for (std::size_t i = 0; i < histograms[0].size(); ++i) {
    const std::string label =
        i == 0 ? "<" + format_double(bin_edges[0], 6)
        : i < bin_edges.size()
            ? format_double(bin_edges[i - 1], 6) + ".." + format_double(bin_edges[i], 6)
            : ">=" + format_double(bin_edges.back(), 6);
    histogram.cell(label).cell(histograms[0][i]).cell(histograms[1][i]);
    histogram.end_row();
  }

  ExperimentResult result;
  result.artifacts.push_back(Artifact{"activity_summary.csv", summary.str()});
  result.artifacts.push_back(Artifact{"pulse_width_histogram.csv", histogram.str()});
  result.artifacts.push_back(Artifact{"top_signals_ddm.csv", top_csv});
  result.artifacts.push_back(Artifact{"mult8_ddm_product.vcd", vcd});
  result.metric("vectors", std::to_string(num_words));
  result.metric("ddm_events", std::to_string(ddm_events));
  result.metric("cdm_events", std::to_string(cdm_events));
  result.metric("cdm_event_overestimate_pct",
                format_double(100.0 * (static_cast<double>(cdm_events) /
                                           static_cast<double>(ddm_events) -
                                       1.0),
                              4));
  result.metric("ddm_filtered_events", std::to_string(ddm_filtered));
  result.metric("cdm_filtered_events", std::to_string(cdm_filtered));
  result.metric("ddm_glitch_transitions", std::to_string(ddm_glitch));
  result.metric("cdm_glitch_transitions", std::to_string(cdm_glitch));
  result.narrative =
      "The paper's Table 1 workload scaled to the 8x8 carry-save multiplier "
      "under a fixed pseudo-random operand stream.  The conventional model "
      "processes substantially more events (it propagates glitches the DDM "
      "degrades away) while filtering far fewer of them, and the pulse-width "
      "histogram shows where the difference lives: the narrow bins.  Glitch "
      "energy uses C*VDD^2/2 per transition over each line's real load.";
  return result;
}

// ---- 4. chain degradation & resurrection ------------------------------------

ExperimentResult run_chain_resurrection(const ExperimentContext& ctx) {
  const int length = ctx.quick ? 8 : 12;
  // The survival boundary of this chain sits between ~0.08 ns (dies at the
  // first stage) and ~0.25 ns (reaches the end); the sweep brackets it.
  const std::vector<TimeNs> widths =
      ctx.quick ? std::vector<TimeNs>{0.1, 0.15, 0.2, 0.25}
                : std::vector<TimeNs>{0.05, 0.08, 0.1, 0.12, 0.15, 0.18, 0.2, 0.22, 0.25, 0.3};
  const DdmDelayModel ddm;

  // Part A: how deep a pulse survives an inverter chain as a function of
  // its width -- degradation narrows it stage by stage until annihilation.
  CsvBuilder survival({"width_ns", "deepest_stage", "filtered_events", "annihilations",
                       "clamped_pulses"});
  std::string vcd;
  for (const TimeNs width : widths) {
    ChainCircuit chain = make_chain(ctx.lib, length);
    Stimulus stim(0.4);
    stim.set_initial(chain.nodes[0], false);
    stim.add_edge(chain.nodes[0], 5.0, true);
    stim.add_edge(chain.nodes[0], 5.0 + width, false);
    Simulator sim(chain.netlist, ddm);
    sim.apply_stimulus(stim);
    (void)sim.run();
    int deepest = 0;
    for (int stage = 1; stage <= length; ++stage) {
      if (sim.history(chain.nodes[static_cast<std::size_t>(stage)]).size() >= 2) {
        deepest = stage;
      }
    }
    survival.cell(width).cell(deepest).cell(sim.stats().filtered_events());
    survival.cell(sim.stats().annihilations).cell(sim.stats().clamped_pulses);
    survival.end_row();
    if (vcd.empty() && deepest > 0 && deepest < length) {
      // First width whose pulse dies mid-chain: the degradation staircase.
      vcd = vcd_from_simulator(sim, chain.nodes, "chain_ddm").to_string();
    }
  }

  // Part B: the engine's rarest repair path.  These seeds provably drive an
  // output-pulse annihilation that must resurrect an event its leading edge
  // had pair-cancelled earlier (the same recipe tests/test_properties.cpp
  // pins); the quiescent state must still equal the combinational steady
  // state.
  CsvBuilder repair({"seed", "events_resurrected", "events_cancelled",
                     "events_suppressed", "annihilations", "steady_state_ok"});
  std::uint64_t total_resurrected = 0;
  bool all_settled = true;
  for (const std::uint64_t seed : {7ull, 35ull, 73ull, 216ull}) {
    RandomCircuit circuit = make_random_circuit(ctx.lib, 6, 50, seed);
    SplitMix64 rng(seed ^ 0xABCDEF);
    Stimulus stim(0.4);
    std::vector<bool> value(circuit.inputs.size());
    for (std::size_t i = 0; i < circuit.inputs.size(); ++i) {
      value[i] = rng.next_bool();
      stim.set_initial(circuit.inputs[i], value[i]);
    }
    TimeNs t = 2.0;
    for (int e = 0; e < 60; ++e) {
      const std::size_t pick = rng.next_below(circuit.inputs.size());
      value[pick] = !value[pick];
      stim.add_edge(circuit.inputs[pick], t, value[pick]);
      t += rng.next_double_in(0.05, 2.0);
    }
    Simulator sim(circuit.netlist, ddm);
    sim.apply_stimulus(stim);
    (void)sim.run();

    const std::unique_ptr<bool[]> pi_values(new bool[circuit.inputs.size()]);
    for (std::size_t i = 0; i < circuit.inputs.size(); ++i) pi_values[i] = value[i];
    const std::vector<bool> expected = circuit.netlist.steady_state(
        std::span<const bool>(pi_values.get(), circuit.inputs.size()));
    bool settled = true;
    for (std::size_t s = 0; s < circuit.netlist.num_signals(); ++s) {
      const SignalId sid{static_cast<SignalId::underlying_type>(s)};
      settled = settled && sim.final_value(sid) == expected[s];
    }
    all_settled = all_settled && settled;
    total_resurrected += sim.stats().events_resurrected;
    repair.cell(seed).cell(sim.stats().events_resurrected);
    repair.cell(sim.stats().events_cancelled).cell(sim.stats().events_suppressed);
    repair.cell(sim.stats().annihilations).cell(settled ? "yes" : "NO");
    repair.end_row();
  }

  ExperimentResult result;
  result.artifacts.push_back(Artifact{"chain_survival.csv", survival.str()});
  result.artifacts.push_back(Artifact{"resurrection.csv", repair.str()});
  if (!vcd.empty()) {
    result.artifacts.push_back(Artifact{"chain_ddm_staircase.vcd", vcd});
  }
  result.metric("chain_length", std::to_string(length));
  result.metric("events_resurrected_total", std::to_string(total_resurrected));
  result.metric("steady_state_consistent", all_settled ? "yes" : "NO");
  result.narrative =
      "Two views of the engine's pulse bookkeeping.  `chain_survival.csv`: a "
      "single pulse entering an INV_X1 chain is degraded stage by stage; below a "
      "critical width it annihilates mid-chain (the VCD captures one such "
      "staircase).  `resurrection.csv`: random-logic stimuli that force the "
      "rarest repair path -- an output-pulse annihilation resurrecting an event "
      "its leading edge had pair-cancelled -- and the final state still matches "
      "the combinational steady state.";
  return result;
}

// ---- 5. STA vs simulation cross-check ---------------------------------------

ExperimentResult run_sta_vs_sim(const ExperimentContext& ctx) {
  struct Vehicle {
    std::string name;
    Netlist netlist;
    std::vector<SignalId> inputs;
  };
  std::vector<Vehicle> vehicles;
  {
    C17Circuit c17 = make_c17(ctx.lib);
    vehicles.push_back(Vehicle{"c17", std::move(c17.netlist), std::move(c17.inputs)});
  }
  {
    const int bits = ctx.quick ? 4 : 8;
    AdderCircuit adder = make_ripple_adder(ctx.lib, bits);
    std::vector<SignalId> inputs;
    for (SignalId s : adder.a) inputs.push_back(s);
    for (SignalId s : adder.b) inputs.push_back(s);
    vehicles.push_back(Vehicle{"adder" + std::to_string(bits), std::move(adder.netlist),
                               std::move(inputs)});
  }
  {
    MultiplierCircuit mult = make_multiplier(ctx.lib, 4);
    std::vector<SignalId> inputs;
    for (SignalId s : mult.a) inputs.push_back(s);
    for (SignalId s : mult.b) inputs.push_back(s);
    vehicles.push_back(Vehicle{"mult4", std::move(mult.netlist), std::move(inputs)});
  }

  const TimeNs period = 8.0;
  const TimeNs slew = 0.5;  // == the STA's assumed input slew
  const std::size_t num_words = ctx.quick ? 12 : 48;
  const CdmDelayModel transport;  // conventional delays, nothing filtered
  const DdmDelayModel ddm;

  CsvBuilder csv({"circuit", "gates", "sta_critical_ns", "cdm_max_arrival_ns",
                  "ddm_max_arrival_ns", "sta_pessimism_pct", "bound_holds"});
  bool all_bounds_hold = true;
  for (Vehicle& vehicle : vehicles) {
    // One elaborated timing database per vehicle: STA reads the very arcs
    // the transport-mode simulation evaluates, so the bound and the dynamic
    // arrivals cannot come from diverging macro-model elaborations.  (The
    // DDM run elaborates its own graph -- same conventional part, plus the
    // degradation terms.)
    const TimingGraph conventional =
        TimingGraph::build(vehicle.netlist, transport.timing_policy());
    const StaticTimingAnalyzer sta(vehicle.netlist, conventional, slew);
    const TimingReport timing = sta.analyze();

    const auto words = random_word_stream(static_cast<int>(vehicle.inputs.size()),
                                          num_words, 0x9E3779B97F4A7C15ULL);
    const auto max_arrival = [&](const DelayModel& model, const TimingGraph* graph) {
      Simulator sim = graph != nullptr ? Simulator(vehicle.netlist, model, *graph)
                                       : Simulator(vehicle.netlist, model);
      sim.apply_stimulus(word_stimulus(vehicle.inputs, words, period, slew));
      (void)sim.run();
      // Attribute each surviving transition to the vector applied at k*period
      // (period >> critical delay, so responses never spill into the next
      // window) and take the worst arrival relative to that application.
      TimeNs worst = 0.0;
      for (std::size_t s = 0; s < vehicle.netlist.num_signals(); ++s) {
        const SignalId sid{static_cast<SignalId::underlying_type>(s)};
        if (vehicle.netlist.signal(sid).is_primary_input) continue;
        for (const Transition& tr : sim.history(sid)) {
          const double vector_index = std::floor((tr.t50() - 1e-9) / period);
          if (vector_index < 1.0) continue;  // settling before the first vector
          worst = std::max(worst, tr.t50() - vector_index * period);
        }
      }
      return worst;
    };
    const TimeNs cdm_arrival = max_arrival(transport, &conventional);
    const TimeNs ddm_arrival = max_arrival(ddm, nullptr);
    const bool bound = cdm_arrival <= timing.critical_delay + 1e-9 &&
                       ddm_arrival <= timing.critical_delay + 1e-9;
    all_bounds_hold = all_bounds_hold && bound;
    const double pessimism =
        cdm_arrival > 0.0
            ? 100.0 * (timing.critical_delay - cdm_arrival) / cdm_arrival
            : 0.0;
    csv.cell(vehicle.name).cell(std::uint64_t{vehicle.netlist.num_gates()});
    csv.cell(timing.critical_delay).cell(cdm_arrival).cell(ddm_arrival);
    csv.cell(pessimism).cell(bound ? "yes" : "NO");
    csv.end_row();
  }

  ExperimentResult result;
  result.artifacts.push_back(Artifact{"sta_crosscheck.csv", csv.str()});
  result.metric("vectors_per_circuit", std::to_string(num_words));
  result.metric("bounds_hold", all_bounds_hold ? "yes" : "NO");
  result.narrative =
      "Static worst-case arrival vs the worst *simulated* arrival over a fixed "
      "random vector stream, per circuit.  The invariant: no simulated "
      "transition -- conventional or degraded -- may arrive later than the STA "
      "critical delay computed from the same macro-models.  `sta_pessimism_pct` "
      "is the margin glitch-free static analysis carries over the dynamic "
      "worst case actually excited by these vectors.";
  return result;
}

}  // namespace

void register_builtin_experiments(ExperimentRegistry& registry) {
  registry.add(Experiment{
      "delay_vs_slope", "Delay vs input slope characterization",
      "sec. 2 (tp0 macro-model under eq. 1)",
      "Model tp0/tau_out vs the transistor-level reference over a slew sweep",
      run_delay_vs_slope});
  registry.add(Experiment{
      "glitch_filtering_sweep", "Pulse degradation and per-input glitch filtering",
      "Fig. 1 (inertial delay wrong results)",
      "Fig. 1 pulse-width sweep: DDM vs conventional inertial filtering",
      run_glitch_filtering_sweep});
  registry.add(Experiment{
      "mult8_glitch_activity", "8x8 multiplier glitch activity",
      "Table 1 (simulation results statistics)",
      "DDM-vs-CDM events, filtered events, glitch power on the 8x8 multiplier",
      run_mult8_glitch_activity});
  registry.add(Experiment{
      "chain_resurrection", "Chain degradation and event resurrection",
      "sec. 3 / Fig. 4 (event cancellation machinery)",
      "Pulse survival depth along an INV chain + the annihilation repair path",
      run_chain_resurrection});
  registry.add(Experiment{
      "sta_vs_sim", "STA vs simulation critical-path cross-check",
      "sec. 1 (timing verification motivation)",
      "Static worst-case arrival bounds every simulated arrival",
      run_sta_vs_sim});
}

}  // namespace halotis::repro
