#include "src/timing/timing_graph.hpp"

#include <sstream>

#include "src/base/check.hpp"
#include "src/base/strings.hpp"

namespace halotis {

TimingGraph TimingGraph::build(const Netlist& netlist, const TimingPolicy& policy) {
  TimingGraph graph;
  graph.netlist_ = &netlist;
  graph.policy_ = policy;
  graph.vdd_ = netlist.library().vdd();

  const std::size_t num_gates = netlist.num_gates();
  graph.gates_.resize(num_gates);
  std::size_t total_pins = 0;
  for (std::size_t g = 0; g < num_gates; ++g) {
    total_pins += netlist.gate(GateId{static_cast<GateId::underlying_type>(g)}).inputs.size();
  }
  graph.arcs_.reserve(2 * total_pins);
  graph.vt_frac_.reserve(total_pins);

  for (std::size_t g = 0; g < num_gates; ++g) {
    const GateId gid{static_cast<GateId::underlying_type>(g)};
    const Gate& gate = netlist.gate(gid);
    const Cell& cell = netlist.cell_of(gid);
    GateTiming& gt = graph.gates_[g];
    gt.arc_base = static_cast<std::uint32_t>(graph.arcs_.size());
    gt.pin_base = static_cast<std::uint32_t>(graph.vt_frac_.size());
    gt.out_load = netlist.load_of(gate.output);

    const double factor = policy.has_variation()
                              ? variation_factor(policy.variation_seed,
                                                 policy.variation_sigma, gid)
                              : 1.0;
    for (int pin = 0; pin < static_cast<int>(gate.inputs.size()); ++pin) {
      graph.arcs_.push_back(
          elaborate_arc(cell, pin, Edge::kRise, gt.out_load, graph.vdd_, policy, factor));
      graph.arcs_.push_back(
          elaborate_arc(cell, pin, Edge::kFall, gt.out_load, graph.vdd_, policy, factor));
      const double frac = policy.threshold == TimingPolicy::Threshold::kPerPinVt
                              ? cell.pin(pin).vt / graph.vdd_
                              : 0.5;
      require(frac > 0.0 && frac < 1.0,
              "TimingGraph: event threshold must lie inside the logic swing");
      graph.vt_frac_.push_back(frac);
    }
  }
  return graph;
}

void TimingGraph::annotate_iopath(GateId gate, int pin, TimeNs rise, TimeNs fall) {
  require(gate.valid() && gate.value() < gates_.size(),
          "TimingGraph::annotate_iopath(): gate out of range");
  const Gate& g = netlist_->gate(gate);
  require(pin >= 0 && pin < static_cast<int>(g.inputs.size()),
          "TimingGraph::annotate_iopath(): pin out of range");
  require(rise >= 0.0 && fall >= 0.0,
          "TimingGraph::annotate_iopath(): negative IOPATH delay");
  for (const Edge edge : {Edge::kRise, Edge::kFall}) {
    TimingArc& arc = arcs_[arc_id(gate, pin, edge)];
    if ((arc.flags & kArcSdfAnnotated) == 0) ++annotated_arcs_;
    arc.tp_base = edge == Edge::kRise ? rise : fall;
    arc.p_slew = 0.0;  // SDF delays are absolute: no slew dependence left
    arc.flags |= kArcSdfAnnotated;
  }
}

std::string TimingGraph::format_arcs() const {
  std::ostringstream out;
  out << "timing graph: " << num_gates() << " gates, " << num_arcs() << " arcs";
  if (policy_.degradation) out << ", degradation";
  if (policy_.has_variation()) {
    out << ", variation sigma=" << format_double(policy_.variation_sigma, 4);
  }
  if (annotated_arcs_ > 0) out << ", " << annotated_arcs_ << " SDF-annotated";
  out << "\n";
  out << "  arc  instance             cell        pin edge  tp0@CL     p_slew  "
         "   tau        T0slope    tau_out    factor\n";
  for (std::size_t g = 0; g < gates_.size(); ++g) {
    const GateId gid{static_cast<GateId::underlying_type>(g)};
    const Gate& gate = netlist_->gate(gid);
    const Cell& cell = netlist_->cell_of(gid);
    for (int pin = 0; pin < static_cast<int>(gate.inputs.size()); ++pin) {
      for (const Edge edge : {Edge::kRise, Edge::kFall}) {
        const std::uint32_t id = arc_id(gid, pin, edge);
        const TimingArc& arc = arcs_[id];
        char line[256];
        std::snprintf(line, sizeof line,
                      "  %-4u %-20s %-11s %-3d %-5s %-10s %-10s %-10s %-10s %-10s %s%s\n",
                      id, gate.name.c_str(), cell.name.c_str(), pin,
                      edge == Edge::kRise ? "rise" : "fall",
                      format_double(arc.tp_base, 6).c_str(),
                      format_double(arc.p_slew, 6).c_str(),
                      format_double(arc.deg_tau, 6).c_str(),
                      format_double(arc.t0_slope, 6).c_str(),
                      format_double(arc.tau_out, 6).c_str(),
                      format_double(arc.factor, 6).c_str(),
                      (arc.flags & kArcSdfAnnotated) != 0 ? "  [sdf]" : "");
        out << line;
      }
    }
  }
  return out.str();
}

}  // namespace halotis
