// The elaborated per-instance timing database (paper section 2 applied to
// section 3's engine).
//
// Built once from Netlist + Library under a TimingPolicy, the TimingGraph
// stores one dense TimingArc per (gate instance, input pin, output edge)
// with the net's actual static load CL already folded in, plus the
// event-threshold crossing fraction of every receiving pin.  Every timing
// consumer -- the event kernel, STA, the SDF writer/reader, the variation
// flow -- reads these same arcs, so the layers can never silently disagree
// about an instance's delay, and the kernel hot path evaluates delays
// through a flat table lookup instead of a virtual DelayModel dispatch.
//
// Arc layout: arcs of gate g occupy the contiguous range
// [arc_base(g), arc_base(g) + 2 * num_inputs), ordered pin-major with the
// rise arc first:  arc_id = arc_base(g) + 2*pin + (out-edge == fall).
//
// SDF back-annotation (parsers/sdf.hpp) overrides the conventional part of
// individual arcs in place (tp_base = the IOPATH absolute delay, p_slew =
// 0); thresholds, output slopes and degradation parameters keep their
// library-elaborated values -- SDF cannot express them, which is the
// paper's argument for a dedicated simulator.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/base/ids.hpp"
#include "src/base/units.hpp"
#include "src/netlist/netlist.hpp"
#include "src/timing/timing_arc.hpp"

namespace halotis {

class TimingGraph {
 public:
  /// Elaborates every arc of `netlist` under `policy`.  The netlist (and
  /// its library) must outlive the graph.
  [[nodiscard]] static TimingGraph build(const Netlist& netlist,
                                         const TimingPolicy& policy);

  // ---- arc access -----------------------------------------------------------

  [[nodiscard]] std::uint32_t arc_base(GateId gate) const {
    return gates_[gate.value()].arc_base;
  }
  /// Dense arc id of (gate, input pin, output edge).
  [[nodiscard]] std::uint32_t arc_id(GateId gate, int pin, Edge out_edge) const {
    return gates_[gate.value()].arc_base + 2u * static_cast<std::uint32_t>(pin) +
           (out_edge == Edge::kFall ? 1u : 0u);
  }
  [[nodiscard]] const TimingArc& arc(std::uint32_t id) const { return arcs_[id]; }
  [[nodiscard]] std::span<const TimingArc> arcs() const { return arcs_; }
  [[nodiscard]] std::size_t num_arcs() const { return arcs_.size(); }
  [[nodiscard]] std::size_t num_gates() const { return gates_.size(); }

  /// Static capacitive load folded into the gate's arcs.
  [[nodiscard]] Farad load(GateId gate) const { return gates_[gate.value()].out_load; }

  /// Event-threshold crossing fraction VT/VDD of one receiving pin (rising
  /// ramps cross at t_start + tau * fraction; falling ones at
  /// t_start + tau * (1 - fraction)).
  [[nodiscard]] double threshold_fraction(GateId gate, int pin) const {
    return vt_frac_[gates_[gate.value()].pin_base + static_cast<std::uint32_t>(pin)];
  }

  [[nodiscard]] const Netlist& netlist() const { return *netlist_; }
  [[nodiscard]] const TimingPolicy& policy() const { return policy_; }
  [[nodiscard]] Volt vdd() const { return vdd_; }

  // ---- SDF back-annotation --------------------------------------------------

  /// Overrides the conventional delay of both arcs of (gate, pin) with
  /// absolute IOPATH delays: tp_base becomes the annotated value, the slew
  /// sensitivity is cleared (SDF delays are absolute).  Degradation
  /// parameters, output slopes and thresholds keep their elaborated values.
  void annotate_iopath(GateId gate, int pin, TimeNs rise, TimeNs fall);

  /// Number of arcs carrying an SDF override.
  [[nodiscard]] std::size_t annotated_arcs() const { return annotated_arcs_; }

  // ---- perturbation (variation / replay) -------------------------------------

  /// Multiplies the derating factor of every arc of `gate` (per-instance
  /// process variation: eval_arc scales tp, tau_out and the inertial
  /// window by the factor).  The graph stays copyable, so variation
  /// samples perturb a copy and the base elaboration is never touched.
  void scale_gate_factor(GateId gate, double scale) {
    const std::uint32_t base = gates_[gate.value()].arc_base;
    const auto n =
        static_cast<std::uint32_t>(2 * netlist_->gate(gate).inputs.size());
    for (std::uint32_t a = base; a < base + n; ++a) arcs_[a].factor *= scale;
  }

  /// Multiplies one arc's derating factor (per-arc fuzz perturbation).
  void scale_arc_factor(std::uint32_t id, double scale) { arcs_[id].factor *= scale; }

  // ---- debugging ------------------------------------------------------------

  /// Human-readable per-arc dump (the `halotis sta --per-arc` divergence
  /// debugging aid): arc id, instance, cell, pin, edge, tp0@CL, p_slew,
  /// tau (eq. 2), T0 slope (eq. 3), tau_out, derating factor, flags.
  [[nodiscard]] std::string format_arcs() const;

 private:
  struct GateTiming {
    std::uint32_t arc_base = 0;  ///< first arc of this gate
    std::uint32_t pin_base = 0;  ///< first vt_frac_ entry of this gate
    Farad out_load = 0.0;        ///< static CL folded into the arcs
  };

  const Netlist* netlist_ = nullptr;
  TimingPolicy policy_;
  Volt vdd_ = 5.0;
  std::vector<GateTiming> gates_;
  std::vector<TimingArc> arcs_;
  std::vector<double> vt_frac_;  ///< flattened (gate, pin) threshold fractions
  std::size_t annotated_arcs_ = 0;
};

}  // namespace halotis
