// The elaborated timing arc: HALOTIS's single source of per-instance truth.
//
// A TimingArc is one (gate instance, input pin, output edge) delay record
// with every load-dependent part of the paper's equations already folded
// against the net's actual static capacitance CL:
//
//   tp0(tau_in)   = tp_base + p_slew * tau_in          tp_base = p0 + p_load*CL
//   tau(eq. 2)    = deg_tau                            (A + B*CL) / VDD, clamped
//   T0(eq. 3)     = t0_slope * tau_in                  t0_slope = 1/2 - C/VDD
//   tau_out       = tau_out                            s0 + s_load*CL
//
// and the model policy (degradation on/off, classical inertial window,
// per-instance variation derating) encoded in flags, so one non-virtual
// eval_arc() serves the event kernel, STA, the SDF exporter and every other
// consumer.  The folding is arranged so eval_arc() reproduces the
// DelayModel::compute() reference implementations *bit for bit*: each
// partial sum keeps the exact association order of the original macro-model
// expressions, and the derating factor multiplies last, exactly where
// VariationDelayModel applied it (x * 1.0 is exact, so unconditional
// multiplication costs nothing in accuracy).
#pragma once

#include <cmath>
#include <cstdint>

#include "src/base/check.hpp"
#include "src/base/ids.hpp"
#include "src/base/units.hpp"
#include "src/netlist/timing.hpp"

namespace halotis {

/// Graph-wide model policy: everything TimingGraph::build() needs to know
/// about the delay model, flattened out of the virtual interface.
struct TimingPolicy {
  /// Apply the paper's degradation (eq. 1-3) to arcs.  Off = conventional.
  bool degradation = false;

  /// Classical output-inertial filtering (CDM only; kNone for DDM and the
  /// paper's observed transport-like CDM).
  enum class Window : std::uint8_t { kNone, kGateDelay, kFixed };
  Window window = Window::kNone;
  TimeNs fixed_window = 0.0;

  /// Event-threshold policy: DDM uses each receiving pin's own VT, CDM the
  /// midswing voltage.
  enum class Threshold : std::uint8_t { kMidswing, kPerPinVt };
  Threshold threshold = Threshold::kMidswing;

  /// Per-instance lognormal process variation (sigma == 0 disables it).
  double variation_sigma = 0.0;
  std::uint64_t variation_seed = 0;

  [[nodiscard]] bool has_variation() const { return variation_sigma != 0.0; }
};

/// Per-arc policy bits (folded from TimingPolicy at elaboration).
enum : std::uint8_t {
  kArcDegradation = 1u << 0,   ///< apply eq. 1-3 against the previous output
  kArcWindowGate = 1u << 1,    ///< inertial window = this transition's tp
  kArcWindowFixed = 1u << 2,   ///< inertial window = TimingArc::window
  kArcSdfAnnotated = 1u << 3,  ///< tp_base overridden by an SDF IOPATH
};

/// One elaborated (gate, pin, out-edge) record.  64 bytes.
struct TimingArc {
  double tp_base = 0.0;   ///< ns: p0 + p_load*CL (or the SDF absolute delay)
  double p_slew = 0.0;    ///< ns/ns input-slope sensitivity (0 once annotated)
  double tau_out = 0.0;   ///< ns: output ramp duration at CL
  double deg_tau = 0.0;   ///< ns: eq. 2 at CL, clamped to kMinDegradationTau
  double t0_slope = 0.0;  ///< eq. 3 slope: T0 = t0_slope * tau_in
  double window = 0.0;    ///< ns: fixed classical inertial window (kArcWindowFixed)
  double factor = 1.0;    ///< per-instance variation derating, applied last
  std::uint8_t flags = 0;
};
static_assert(sizeof(TimingArc) == 64, "TimingArc should fill one cache line");

/// Outputs of one arc evaluation (mirrors DelayResult).
struct ArcDelay {
  TimeNs tp = 0.0;
  TimeNs tau_out = 0.0;
  bool filtered = false;         ///< DDM T <= T0 pulse annihilation
  TimeNs inertial_window = 0.0;  ///< CDM classical window; 0 disables

  /// Applies the per-instance derating exactly where VariationDelayModel
  /// did: after the full model computation, to every time-valued output.
  void factor_scale(double k) {
    tp *= k;
    tau_out *= k;
    inertial_window *= k;
  }
};

/// Characterized (A, B) fits can cross zero at extreme loads (eq. 2 is a
/// linear extrapolation); a non-positive tau means "instant recovery", so
/// elaboration clamps to a tiny positive constant -- the exponential then
/// evaluates to ~1 (no degradation) past T0 and the T <= T0 collapse still
/// applies.  Value shared with the DelayModel reference implementation.
inline constexpr TimeNs kMinDegradationTau = 1e-6;  // 1 femtosecond, in ns

/// Folds one (cell, pin, out-edge) against the static load `cl` under
/// `policy`, with per-instance derating `factor` (1.0 = nominal).
[[nodiscard]] inline TimingArc elaborate_arc(const Cell& cell, int pin, Edge out_edge,
                                             Farad cl, Volt vdd,
                                             const TimingPolicy& policy,
                                             double factor = 1.0) {
  require(pin >= 0 && pin < static_cast<int>(cell.pins.size()),
          "elaborate_arc(): pin out of range");
  const EdgeTiming& edge = cell.pins[static_cast<std::size_t>(pin)].edge(out_edge);
  TimingArc arc;
  arc.tp_base = edge.p0 + edge.p_load * cl;
  arc.p_slew = edge.p_slew;
  arc.tau_out = cell.drive.tau_out(out_edge, cl);
  arc.factor = factor;
  if (policy.degradation) {
    arc.flags |= kArcDegradation;
    arc.deg_tau = std::max(edge.deg_tau(cl, vdd), kMinDegradationTau);
    arc.t0_slope = 0.5 - edge.deg_c / vdd;
  }
  switch (policy.window) {
    case TimingPolicy::Window::kNone:
      break;
    case TimingPolicy::Window::kGateDelay:
      arc.flags |= kArcWindowGate;
      break;
    case TimingPolicy::Window::kFixed:
      arc.flags |= kArcWindowFixed;
      arc.window = policy.fixed_window;
      break;
  }
  return arc;
}

/// The devirtualized delay kernel: evaluates one arc for a causing input
/// ramp of duration `tau_in` whose threshold crossing happened at `t_event`.
/// `has_prev` / `t_prev_out50` describe the gate's previous surviving output
/// transition (the paper's internal-state measure); degradation only applies
/// when one exists.
[[nodiscard]] inline ArcDelay eval_arc(const TimingArc& arc, TimeNs tau_in,
                                       TimeNs t_event, bool has_prev,
                                       TimeNs t_prev_out50) {
  ArcDelay result;
  result.tp = arc.tp_base + arc.p_slew * tau_in;
  result.tau_out = arc.tau_out;
  if ((arc.flags & kArcDegradation) != 0 && has_prev) {
    // The paper's T, referenced to the triggering event (threshold crossing).
    const TimeNs t_elapsed = t_event - t_prev_out50;
    const TimeNs t0 = arc.t0_slope * tau_in;
    if (t_elapsed <= t0) {
      // The gate's internal state never recovered enough to produce an
      // output pulse at all (eq. 1 would give tp <= 0): annihilate, with no
      // output ramp either.
      result.filtered = true;
      result.tp = 0.0;
      result.tau_out = 0.0;
      result.factor_scale(arc.factor);
      return result;
    }
    result.tp *= 1.0 - std::exp(-(t_elapsed - t0) / arc.deg_tau);
  }
  if ((arc.flags & kArcWindowGate) != 0) {
    result.inertial_window = result.tp;
  } else if ((arc.flags & kArcWindowFixed) != 0) {
    result.inertial_window = arc.window;
  }
  result.factor_scale(arc.factor);
  return result;
}

/// Deterministic per-(seed, gate) lognormal derating factor
/// exp(sigma * z), z ~ N(0,1): two splitmix64 draws -> Box-Muller.  The
/// TimingGraph builder and VariationDelayModel share this one definition.
[[nodiscard]] inline double variation_factor(std::uint64_t seed, double sigma,
                                             GateId gate) {
  const auto mix = [](std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
  };
  const std::uint64_t h1 = mix(seed ^ (static_cast<std::uint64_t>(gate.value()) << 1));
  const std::uint64_t h2 = mix(h1 ^ 0xD1B54A32D192ED03ULL);
  const double u1 = (static_cast<double>(h1 >> 11) + 0.5) * (1.0 / 9007199254740992.0);
  const double u2 = static_cast<double>(h2 >> 11) * (1.0 / 9007199254740992.0);
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  return std::exp(sigma * z);
}

}  // namespace halotis
