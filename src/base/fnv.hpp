// The repo-wide 64-bit FNV-1a hash.
//
// One definition serves every hashing consumer -- the waveform history
// hash (src/replay/history_hash.hpp), repro artifact goldens
// (src/repro/artifacts), lint finding ids (src/lint), bench/perf_report
// and the daemon's elaboration-cache key (src/serve) -- so the constants
// can never drift apart.  All committed goldens (quick hashes, repro
// hashes, lint ids) are bytes of exactly this function.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace halotis {

inline constexpr std::uint64_t kFnv1aOffset = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnv1aPrime = 1099511628211ULL;

/// Folds `n` raw bytes into a running FNV-1a hash.
[[nodiscard]] inline std::uint64_t fnv1a(std::uint64_t hash, const void* data,
                                         std::size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    hash ^= bytes[i];
    hash *= kFnv1aPrime;
  }
  return hash;
}

/// One-shot 64-bit FNV-1a over a byte string.
[[nodiscard]] inline std::uint64_t fnv1a64(std::string_view bytes) {
  return fnv1a(kFnv1aOffset, bytes.data(), bytes.size());
}

/// 16 lower-case hex digits (the repo-wide hash rendering).
[[nodiscard]] inline std::string fnv_hex(std::uint64_t value) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[value & 0xF];
    value >>= 4;
  }
  return out;
}

}  // namespace halotis
