// Run supervision: budgets, deadlines and cooperative cancellation for
// every HALOTIS entry point (docs/ARCHITECTURE.md "Supervision & failure
// semantics").
//
// The simulator's only native defense against a runaway workload (a
// near-oscillatory DDM event storm, a feedback loop that never settles)
// used to be SimConfig::max_events.  The supervision layer generalizes
// that into a RunBudget -- event count, peak live-transition count, arena
// byte footprint, wall-clock deadline -- plus a CancelToken any thread
// (or a SIGINT handler) can trip, and a structured RunError taxonomy that
// maps onto documented CLI exit codes.
//
// Determinism contract: budget checks are pure functions of deterministic
// kernel state (event ordinals, arena sizes), so a budget stop happens at
// the bit-identical point on every rerun.  The wall-clock deadline and
// cancellation are inherently racy in *when* they stop a run, but they
// only ever abort work -- a run that completes is unaffected, so completed
// artifacts remain bit-identical to an unsupervised run.  The expensive
// polls (steady_clock read, atomic load, arena measurement) happen only
// every RunBudget::poll_events events; the per-event cost of an attached
// supervisor is a null check and a countdown decrement (kernels pull the
// countdown in so it expires exactly on the first over-budget event).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>

namespace halotis {

/// The structured failure taxonomy every supervised entry point reports
/// through.  Each kind maps to a documented CLI exit code (README.md).
enum class RunErrorKind {
  kBudgetExceeded,     ///< event / memory budget tripped       (exit 3)
  kDeadlineExceeded,   ///< wall-clock deadline passed          (exit 4)
  kCancelled,          ///< CancelToken tripped (e.g. SIGINT)   (exit 5)
  kIoError,            ///< artifact emission failed            (exit 6)
  kContractViolation,  ///< API misuse / malformed input        (exit 1)
};

class RunError : public std::runtime_error {
 public:
  RunError(RunErrorKind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}

  [[nodiscard]] RunErrorKind kind() const { return kind_; }
  [[nodiscard]] int exit_code() const { return exit_code(kind_); }

  [[nodiscard]] static const char* kind_name(RunErrorKind kind);
  /// The documented CLI exit code for `kind` (README.md exit-code table).
  [[nodiscard]] static int exit_code(RunErrorKind kind);

 private:
  RunErrorKind kind_;
};

/// Shared-handle cooperative cancellation flag.  Copies observe the same
/// flag; cancel() is safe from any thread and from signal handlers built
/// on an external atomic (see install_sigint_cancel).
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void cancel() const noexcept { flag_->store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancelled() const noexcept {
    return flag_->load(std::memory_order_relaxed);
  }

  /// The underlying lock-free flag, for async-signal contexts that may
  /// not touch shared_ptr machinery (install_sigint_cancel keeps a copy
  /// of the token alive, so the pointer stays valid).
  [[nodiscard]] std::atomic<bool>* raw_flag() const noexcept { return flag_.get(); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Resource budget for one supervised run.  0 anywhere = unlimited.
struct RunBudget {
  /// Processed-event budget per kernel run (Simulator lifetime between
  /// reset()s).  Unlike SimConfig::max_events -- which *stops* the run
  /// with StopReason::kEventLimit -- exceeding a budget is an error.
  std::uint64_t max_events = 0;
  /// Peak simultaneously-live transition bookkeeping records.
  std::uint64_t max_live_transitions = 0;
  /// Transition + event arena byte footprint.
  std::uint64_t max_arena_bytes = 0;
  /// Wall-clock deadline in seconds, measured from RunSupervisor::arm().
  double deadline_s = 0.0;
  /// Events between slow polls (deadline / cancellation / memory); the
  /// event budget trips on the exact over-budget event regardless (the
  /// kernel countdown expires early at the budget boundary).
  std::uint32_t poll_events = 4096;
};

/// The object every supervised entry point polls.  Const-shareable across
/// worker threads: all mutable state (the deadline stamp) is written by
/// arm() before the run, and checks only read.  Each polling kernel keeps
/// its own countdown (see Simulator::supervise), so no contended counter
/// sits on the hot path.
class RunSupervisor {
 public:
  RunSupervisor() = default;
  explicit RunSupervisor(RunBudget budget, CancelToken cancel = CancelToken{})
      : budget_(budget), cancel_(std::move(cancel)) {}

  [[nodiscard]] const RunBudget& budget() const { return budget_; }
  [[nodiscard]] const CancelToken& cancel_token() const { return cancel_; }
  [[nodiscard]] bool cancelled() const { return cancel_.cancelled(); }

  /// Stamps the wall-clock deadline start.  Call once, immediately before
  /// the supervised work begins.
  void arm();

  /// Per-event check (inline, two compares): the event budget.
  void check_events(std::uint64_t events_processed, std::string_view where) const {
    if (budget_.max_events != 0 && events_processed > budget_.max_events) {
      throw_budget(where, "event", events_processed, budget_.max_events);
    }
  }

  /// Slow poll -- deadline, cancellation, memory budgets.  Called every
  /// poll_events events by the kernel, and at coarse boundaries (fault,
  /// experiment, window barrier) by the drivers.
  void check_poll(std::uint64_t live_transitions, std::uint64_t arena_bytes,
                  std::string_view where) const;

  /// Deadline + cancellation only (coarse boundaries with no kernel
  /// memory to measure).
  void check_coarse(std::string_view where) const;

 private:
  [[noreturn]] static void throw_budget(std::string_view where, std::string_view what,
                                        std::uint64_t used, std::uint64_t budget);

  RunBudget budget_;
  CancelToken cancel_;
  std::chrono::steady_clock::time_point armed_at_{};
  bool armed_ = false;
};

/// Routes SIGINT (Ctrl-C) to `token`: the first signal trips the token so
/// supervised runs unwind with RunError(kCancelled) and exit 5; a second
/// SIGINT falls back to the default handler (hard kill for a wedged run).
/// Process-global; call at most once per process (the CLI entry point).
void install_sigint_cancel(const CancelToken& token);

/// Routes SIGTERM to `token` the same way: the daemon's graceful-drain
/// signal (systemd stop, CI teardown).  A second SIGTERM falls back to the
/// default handler.  Process-global; call at most once per process
/// (`halotis serve` installs it alongside the SIGINT route).
void install_sigterm_cancel(const CancelToken& token);

}  // namespace halotis
