// Small dense least-squares helpers used by the characterization flow
// (fitting tp0 macro-models and degradation parameters against the analog
// reference simulator) and by result post-processing in the benches.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace halotis {

/// Result of an ordinary 1-D linear regression y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination in [0, 1]; 1 means a perfect fit.
  double r_squared = 0.0;
};

/// Least-squares fit of y = slope * x + intercept.
/// Requires xs.size() == ys.size() and at least two distinct x values.
[[nodiscard]] LinearFit fit_line(std::span<const double> xs, std::span<const double> ys);

/// Least-squares solution of A * coeffs = y for a dense column-major
/// design matrix with `num_params` columns, via normal equations and
/// Gaussian elimination with partial pivoting.  `rows[i]` holds the i-th
/// observation's regressor values (size num_params).
/// Requires rows.size() == y.size() >= num_params.
[[nodiscard]] std::vector<double> fit_least_squares(
    const std::vector<std::vector<double>>& rows, std::span<const double> y);

/// R^2 of predictions vs observations; 1 is perfect, can be negative for
/// fits worse than the mean.
[[nodiscard]] double r_squared(std::span<const double> predicted,
                               std::span<const double> observed);

/// Mean of a non-empty range.
[[nodiscard]] double mean(std::span<const double> values);

/// Population standard deviation of a non-empty range.
[[nodiscard]] double stddev(std::span<const double> values);

/// Median (of a copy; input untouched). Requires non-empty input.
[[nodiscard]] double median(std::span<const double> values);

/// Solves the dense linear system `a * x = b` in-place via Gaussian
/// elimination with partial pivoting. `a` is row-major n x n, `b` length n.
/// Returns the solution; throws ContractViolation on singular systems.
[[nodiscard]] std::vector<double> solve_linear_system(std::vector<double> a,
                                                      std::vector<double> b,
                                                      std::size_t n);

}  // namespace halotis
