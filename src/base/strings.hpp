// String utilities shared by the parsers and report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace halotis {

/// Removes leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view text);

/// Splits on `separator`, trimming each piece; empty pieces are kept.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char separator);

/// Splits on any amount of ASCII whitespace; empty pieces are dropped.
[[nodiscard]] std::vector<std::string> split_whitespace(std::string_view text);

/// ASCII lower-casing.
[[nodiscard]] std::string to_lower(std::string_view text);

/// ASCII upper-casing.
[[nodiscard]] std::string to_upper(std::string_view text);

/// True when `text` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);

/// Parses a double, throwing ContractViolation with `context` on failure.
[[nodiscard]] double parse_double(std::string_view text, std::string_view context);

/// Parses a non-negative integer, throwing ContractViolation on failure.
[[nodiscard]] unsigned long parse_unsigned(std::string_view text, std::string_view context);

/// printf-style %.*g formatting with a fixed precision, locale-independent.
[[nodiscard]] std::string format_double(double value, int precision = 6);

}  // namespace halotis
