// Deterministic pseudo-random number generation for workload generators.
//
// HALOTIS results must be exactly reproducible across runs and platforms,
// so the generators use a fixed splitmix64 core rather than std::mt19937
// seeded from std::random_device.
#pragma once

#include <cstdint>
#include <vector>

#include "src/base/check.hpp"

namespace halotis {

/// splitmix64: tiny, fast, passes BigCrush as a 64-bit mixer.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    state_ += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). Requires bound > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    require(bound > 0, "next_below() requires a positive bound");
    // Multiply-shift rejection-free mapping; bias is < 2^-64 * bound,
    // negligible for workload generation.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double next_double_in(double lo, double hi) {
    require(hi >= lo, "next_double_in() requires hi >= lo");
    return lo + (hi - lo) * next_double();
  }

  /// Bernoulli trial with probability p of returning true.
  bool next_bool(double p = 0.5) { return next_double() < p; }

 private:
  std::uint64_t state_;
};

/// Deterministic stream of `count` uniform words of `bits` bits each --
/// the shared stimulus-word generator for benchmarks and tests (perf_report
/// workloads and the determinism suite must draw identical streams).
inline std::vector<std::uint64_t> random_word_stream(int bits, std::size_t count,
                                                     std::uint64_t seed) {
  require(bits > 0 && bits <= 64, "random_word_stream(): bits must be in [1, 64]");
  SplitMix64 rng(seed);
  std::vector<std::uint64_t> words;
  words.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    words.push_back(bits >= 64 ? rng.next() : rng.next_below(std::uint64_t{1} << bits));
  }
  return words;
}

}  // namespace halotis
