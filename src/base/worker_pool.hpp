// A small reusable worker pool for embarrassingly parallel sweeps.
//
// HALOTIS campaign workloads (stuck-at fault simulation, Monte-Carlo
// variation runs) shard an index space across a fixed set of workers, each
// of which owns heavyweight reusable state (a Simulator).  The pool keeps
// its threads alive across calls so repeated sweeps -- e.g. one per ATPG
// candidate vector -- pay no thread creation cost.
//
// Scheduling is dynamic (one atomic ticket per index), so results must be
// keyed by index, never by completion order: callers that write one output
// slot per index are deterministic regardless of thread count or OS
// scheduling.
#pragma once

#include <cstddef>
#include <functional>
#include <stdexcept>
#include <string>

namespace halotis {

/// Thrown by WorkerPool::for_each_index when MORE THAN ONE job failed:
/// the first failure's message is preserved verbatim and the total count
/// rides along, so campaign/repro diagnostics are never misled into
/// thinking a single fault was the only casualty.  A sweep with exactly
/// one failing job rethrows that job's original exception unchanged
/// (type-preserving -- callers filtering on RunError keep working).
class WorkerPoolError : public std::runtime_error {
 public:
  WorkerPoolError(std::size_t failures, const std::string& first_message)
      : std::runtime_error(std::to_string(failures) +
                           " worker jobs failed; first failure: " + first_message),
        failures_(failures),
        first_message_(first_message) {}

  [[nodiscard]] std::size_t failures() const { return failures_; }
  [[nodiscard]] const std::string& first_message() const { return first_message_; }

 private:
  std::size_t failures_;
  std::string first_message_;
};

class WorkerPool {
 public:
  /// One job item: `worker` in [0, size()) identifies the calling worker
  /// (stable within one for_each_index call), `index` the work item.
  using IndexFn = std::function<void(int worker, std::size_t index)>;

  /// Creates a pool of `threads` workers; 0 means one per hardware thread.
  /// The calling thread participates as worker 0, so `threads == 1` spawns
  /// nothing and runs jobs inline (the deterministic serial baseline).
  explicit WorkerPool(int threads = 0);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] int size() const { return num_workers_; }

  /// Runs body(worker, index) for every index in [0, count), sharded across
  /// the pool by an atomic ticket counter; blocks until all indices are
  /// done.  `body` must be safe to call concurrently from different
  /// workers.  Every index is attempted exactly once even when some throw;
  /// after the sweep drains, a single failure is rethrown unchanged on the
  /// calling thread, and multiple failures raise WorkerPoolError carrying
  /// the count plus the first failure's message.  Not reentrant.
  void for_each_index(std::size_t count, const IndexFn& body);

  /// `threads` normalized the same way the constructor does it: 0 becomes
  /// the hardware concurrency, everything is clamped to at least 1.
  [[nodiscard]] static int resolve_threads(int threads);

 private:
  struct Impl;
  Impl* impl_;
  int num_workers_;
};

}  // namespace halotis
