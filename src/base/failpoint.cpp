#include "src/base/failpoint.hpp"

#include <algorithm>

#include "src/base/check.hpp"
#include "src/base/strings.hpp"

namespace halotis {

FailPoints& FailPoints::instance() {
  static FailPoints registry;
  return registry;
}

void FailPoints::arm(std::string_view site, std::uint64_t fire_on_hit, bool repeat) {
  require(!site.empty(), "FailPoints::arm(): site name must be non-empty");
  require(fire_on_hit >= 1, "FailPoints::arm(): fire_on_hit is 1-based");
  std::lock_guard<std::mutex> lock(mutex_);
  for (Site& existing : sites_) {
    if (existing.name == site) {
      existing.fire_on_hit = fire_on_hit;
      existing.hits = 0;
      existing.repeat = repeat;
      existing.fired = false;
      return;
    }
  }
  Site entry;
  entry.name = std::string(site);
  entry.fire_on_hit = fire_on_hit;
  entry.repeat = repeat;
  sites_.push_back(std::move(entry));
  armed_sites_.store(static_cast<std::uint32_t>(sites_.size()), std::memory_order_relaxed);
}

void FailPoints::arm_spec(std::string_view spec) {
  for (const std::string& raw : split(std::string(spec), ';')) {
    for (std::string entry : split(raw, ',')) {
      // Trim surrounding whitespace (env vars get quoted and padded).
      while (!entry.empty() && (entry.front() == ' ' || entry.front() == '\t')) {
        entry.erase(entry.begin());
      }
      while (!entry.empty() && (entry.back() == ' ' || entry.back() == '\t')) {
        entry.pop_back();
      }
      if (entry.empty()) continue;
      bool repeat = false;
      if (entry.back() == '*') {
        repeat = true;
        entry.pop_back();
      }
      std::uint64_t fire_on_hit = 1;
      const std::size_t at = entry.find('@');
      if (at != std::string::npos) {
        const std::string ordinal = entry.substr(at + 1);
        require(!ordinal.empty() &&
                    ordinal.find_first_not_of("0123456789") == std::string::npos,
                "fail-point spec: '@' must be followed by a decimal hit ordinal in '" +
                    entry + "'");
        fire_on_hit = std::stoull(ordinal);
        require(fire_on_hit >= 1, "fail-point spec: hit ordinal is 1-based in '" + entry + "'");
        entry.resize(at);
      }
      require(!entry.empty(), "fail-point spec: empty site name in '" + raw + "'");
      arm(entry, fire_on_hit, repeat);
    }
  }
}

void FailPoints::disarm_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_.clear();
  armed_sites_.store(0, std::memory_order_relaxed);
}

bool FailPoints::visit(std::string_view site) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Site& armed : sites_) {
    if (armed.name != site) continue;
    ++armed.hits;
    if (armed.repeat) return armed.hits >= armed.fire_on_hit;
    if (!armed.fired && armed.hits == armed.fire_on_hit) {
      armed.fired = true;
      return true;
    }
    return false;
  }
  return false;
}

std::uint64_t FailPoints::hits(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Site& armed : sites_) {
    if (armed.name == site) return armed.hits;
  }
  return 0;
}

}  // namespace halotis
