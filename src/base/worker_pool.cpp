#include "src/base/worker_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "src/base/check.hpp"

namespace halotis {

struct WorkerPool::Impl {
  std::mutex mutex;
  std::condition_variable work_ready;
  std::condition_variable work_done;
  std::vector<std::thread> threads;

  // One sweep's shared state; guarded by `mutex` except the ticket counter.
  const IndexFn* body = nullptr;
  std::size_t count = 0;
  std::atomic<std::size_t> next{0};
  std::uint64_t generation = 0;  ///< bumped per sweep; wakes the workers
  int workers_active = 0;
  std::exception_ptr first_error;
  std::size_t error_count = 0;
  bool shutting_down = false;

  /// Claims and runs indices until the ticket counter drains.  A throwing
  /// body records the failure (first exception kept, all counted -- see
  /// for_each_index's aggregation contract) and the worker keeps claiming
  /// further tickets, so every index is attempted exactly once even on
  /// errors.
  void drain(int worker) {
    const IndexFn& fn = *body;
    while (true) {
      const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= count) return;
      try {
        fn(worker, index);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!first_error) first_error = std::current_exception();
        ++error_count;
      }
    }
  }

  void worker_loop(int worker) {
    std::uint64_t seen_generation = 0;
    while (true) {
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_ready.wait(lock, [&] {
          return shutting_down || generation != seen_generation;
        });
        if (shutting_down) return;
        seen_generation = generation;
      }
      drain(worker);
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (--workers_active == 0) work_done.notify_all();
      }
    }
  }
};

int WorkerPool::resolve_threads(int threads) {
  if (threads > 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

WorkerPool::WorkerPool(int threads) : impl_(new Impl), num_workers_(resolve_threads(threads)) {
  // Worker 0 is the calling thread; only 1..N-1 are spawned.
  impl_->threads.reserve(static_cast<std::size_t>(num_workers_ - 1));
  for (int w = 1; w < num_workers_; ++w) {
    impl_->threads.emplace_back([this, w] { impl_->worker_loop(w); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->shutting_down = true;
  }
  impl_->work_ready.notify_all();
  for (std::thread& t : impl_->threads) t.join();
  delete impl_;
}

void WorkerPool::for_each_index(std::size_t count, const IndexFn& body) {
  require(static_cast<bool>(body), "WorkerPool::for_each_index(): body must be callable");
  if (count == 0) return;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    require(impl_->body == nullptr, "WorkerPool::for_each_index(): not reentrant");
    impl_->body = &body;
    impl_->count = count;
    impl_->next.store(0, std::memory_order_relaxed);
    impl_->workers_active = static_cast<int>(impl_->threads.size());
    impl_->first_error = nullptr;
    impl_->error_count = 0;
    ++impl_->generation;
  }
  impl_->work_ready.notify_all();

  impl_->drain(/*worker=*/0);  // the calling thread participates

  std::exception_ptr error;
  std::size_t error_count = 0;
  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->work_done.wait(lock, [&] { return impl_->workers_active == 0; });
    impl_->body = nullptr;
    error = impl_->first_error;
    error_count = impl_->error_count;
  }
  if (!error) return;
  // One failure propagates unchanged (type-preserving); several are
  // aggregated so the caller sees the real blast radius, not just the
  // scheduling-dependent first casualty.
  if (error_count <= 1) std::rethrow_exception(error);
  std::string first_message = "unknown (non-standard exception)";
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    first_message = e.what();
  } catch (...) {
  }
  throw WorkerPoolError(error_count, first_message);
}

}  // namespace halotis
