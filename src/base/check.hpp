// Precondition / invariant checking helpers (Core Guidelines I.6 / E.12).
//
// HALOTIS is a simulator, not a long-running service: on contract violation
// the most useful behaviour is to stop immediately with a precise message.
// `require` throws `halotis::ContractViolation` so tests can assert on
// misuse, while release builds keep the checks (they are cheap compared to
// event processing).
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace halotis {

/// Thrown when a precondition or invariant documented in a function's
/// contract is violated by the caller.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

/// Throws ContractViolation when `condition` is false.  `message` should
/// state the violated contract from the caller's point of view.
inline void require(bool condition, std::string_view message,
                    std::source_location loc = std::source_location::current()) {
  if (!condition) {
    std::string what{message};
    what += " [";
    what += loc.file_name();
    what += ':';
    what += std::to_string(loc.line());
    what += ']';
    throw ContractViolation(what);
  }
}

/// Internal-consistency variant of `require`; identical behaviour, the
/// distinct name documents that a failure is a bug in HALOTIS itself rather
/// than in the calling code.
inline void ensure(bool condition, std::string_view message,
                   std::source_location loc = std::source_location::current()) {
  require(condition, message, loc);
}

/// `ensure` for the event kernel's per-event inner loop, where the checks
/// sit between every pair of arena accesses: active in Debug builds (and
/// under the sanitizer CI tiers, which build Debug), compiled out in
/// Release.  Since the PR-5 hot-path rework the kernel processes an event
/// in a few hundred nanoseconds, so these dependent-load comparisons are no
/// longer noise there; every check still runs on the whole test suite in
/// Debug.  Use plain `ensure`/`require` everywhere else -- public API
/// contracts must throw in every build type.
#ifdef NDEBUG
inline void debug_ensure(bool, std::string_view) {}
#else
inline void debug_ensure(bool condition, std::string_view message,
                         std::source_location loc = std::source_location::current()) {
  require(condition, message, loc);
}
#endif

}  // namespace halotis
