// Physical units and conventions used across HALOTIS.
//
// All times are expressed in nanoseconds, all voltages in volts and all
// capacitances in picofarads.  With those choices the delay macro-model
// coefficients have friendly magnitudes (ns/pF) and the 0.6 um-class
// default technology operates on numbers close to 1.0, which keeps
// double-precision error far below the ~1 fs resolution any experiment in
// the paper needs.
#pragma once

namespace halotis {

/// Simulation time in nanoseconds.
using TimeNs = double;
/// Voltage in volts.
using Volt = double;
/// Capacitance in picofarads.
using Farad = double;  // actually pF; named for brevity in signatures.
/// Current in milliamperes (consistent with V / (pF * ns) units).
using Ampere = double;

namespace units {
inline constexpr TimeNs kPicosecond = 1e-3;
inline constexpr TimeNs kNanosecond = 1.0;
inline constexpr TimeNs kMicrosecond = 1e3;
inline constexpr Farad kFemtofarad = 1e-3;
inline constexpr Farad kPicofarad = 1.0;
}  // namespace units

/// Smallest time difference HALOTIS distinguishes.  Events closer than this
/// are considered simultaneous and ordered by their creation sequence.
inline constexpr TimeNs kTimeEpsilonNs = 1e-9;  // 1 attosecond in ns units.

/// A time value used to mean "never" / "not yet scheduled".
inline constexpr TimeNs kNeverNs = 1e300;

}  // namespace halotis
