#include "src/base/mathfit.hpp"

#include <algorithm>
#include <cmath>

#include "src/base/check.hpp"

namespace halotis {

double mean(std::span<const double> values) {
  require(!values.empty(), "mean() requires a non-empty range");
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
  const double m = mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values.size()));
}

double median(std::span<const double> values) {
  require(!values.empty(), "median() requires a non-empty range");
  std::vector<double> copy(values.begin(), values.end());
  const auto mid = copy.size() / 2;
  std::nth_element(copy.begin(), copy.begin() + static_cast<std::ptrdiff_t>(mid), copy.end());
  if (copy.size() % 2 == 1) return copy[mid];
  const double hi = copy[mid];
  const double lo = *std::max_element(copy.begin(), copy.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

LinearFit fit_line(std::span<const double> xs, std::span<const double> ys) {
  require(xs.size() == ys.size(), "fit_line() requires equally sized ranges");
  require(xs.size() >= 2, "fit_line() requires at least two points");
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxx += (xs[i] - mx) * (xs[i] - mx);
    sxy += (xs[i] - mx) * (ys[i] - my);
  }
  require(sxx > 0.0, "fit_line() requires at least two distinct x values");

  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;

  std::vector<double> predicted(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) predicted[i] = fit.slope * xs[i] + fit.intercept;
  fit.r_squared = r_squared(predicted, ys);
  return fit;
}

double r_squared(std::span<const double> predicted, std::span<const double> observed) {
  require(predicted.size() == observed.size(), "r_squared() requires equal sizes");
  require(!observed.empty(), "r_squared() requires non-empty input");
  const double my = mean(observed);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    ss_res += (observed[i] - predicted[i]) * (observed[i] - predicted[i]);
    ss_tot += (observed[i] - my) * (observed[i] - my);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

std::vector<double> solve_linear_system(std::vector<double> a, std::vector<double> b,
                                        std::size_t n) {
  require(a.size() == n * n, "solve_linear_system(): matrix size must be n*n");
  require(b.size() == n, "solve_linear_system(): rhs size must be n");
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::abs(a[row * n + col]) > std::abs(a[pivot * n + col])) pivot = row;
    }
    require(std::abs(a[pivot * n + col]) > 1e-300, "solve_linear_system(): singular matrix");
    if (pivot != col) {
      for (std::size_t k = 0; k < n; ++k) std::swap(a[col * n + k], a[pivot * n + k]);
      std::swap(b[col], b[pivot]);
    }
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a[row * n + col] / a[col * n + col];
      for (std::size_t k = col; k < n; ++k) a[row * n + k] -= factor * a[col * n + k];
      b[row] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t k = i + 1; k < n; ++k) acc -= a[i * n + k] * x[k];
    x[i] = acc / a[i * n + i];
  }
  return x;
}

std::vector<double> fit_least_squares(const std::vector<std::vector<double>>& rows,
                                      std::span<const double> y) {
  require(rows.size() == y.size(), "fit_least_squares(): rows and y must match");
  require(!rows.empty(), "fit_least_squares(): needs at least one observation");
  const std::size_t p = rows.front().size();
  require(p >= 1, "fit_least_squares(): needs at least one parameter");
  require(rows.size() >= p, "fit_least_squares(): underdetermined system");
  for (const auto& row : rows) {
    require(row.size() == p, "fit_least_squares(): ragged design matrix");
  }

  // Normal equations: (A^T A) x = A^T y.
  std::vector<double> ata(p * p, 0.0);
  std::vector<double> aty(p, 0.0);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::size_t r = 0; r < p; ++r) {
      aty[r] += rows[i][r] * y[i];
      for (std::size_t c = 0; c < p; ++c) ata[r * p + c] += rows[i][r] * rows[i][c];
    }
  }
  return solve_linear_system(std::move(ata), std::move(aty), p);
}

}  // namespace halotis
