#include "src/base/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

#include "src/base/check.hpp"

namespace halotis {

namespace {
bool is_space(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }
}  // namespace

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && is_space(text[begin])) ++begin;
  while (end > begin && is_space(text[end - 1])) --end;
  return text.substr(begin, end - begin);
}

std::vector<std::string> split(std::string_view text, char separator) {
  std::vector<std::string> pieces;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(separator, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(trim(text.substr(start)));
      return pieces;
    }
    pieces.emplace_back(trim(text.substr(start, pos - start)));
    start = pos + 1;
  }
}

std::vector<std::string> split_whitespace(std::string_view text) {
  std::vector<std::string> pieces;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && is_space(text[i])) ++i;
    const std::size_t begin = i;
    while (i < text.size() && !is_space(text[i])) ++i;
    if (i > begin) pieces.emplace_back(text.substr(begin, i - begin));
  }
  return pieces;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string to_upper(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

double parse_double(std::string_view text, std::string_view context) {
  const std::string_view trimmed = trim(text);
  double value = 0.0;
  const auto* begin = trimmed.data();
  const auto* end = trimmed.data() + trimmed.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  require(ec == std::errc{} && ptr == end,
          std::string("failed to parse number '") + std::string(trimmed) + "' in " +
              std::string(context));
  return value;
}

unsigned long parse_unsigned(std::string_view text, std::string_view context) {
  const std::string_view trimmed = trim(text);
  unsigned long value = 0;
  const auto* begin = trimmed.data();
  const auto* end = trimmed.data() + trimmed.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  require(ec == std::errc{} && ptr == end,
          std::string("failed to parse unsigned '") + std::string(trimmed) + "' in " +
              std::string(context));
  return value;
}

std::string format_double(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*g", precision, value);
  return buffer;
}

}  // namespace halotis
