#include "src/base/fileio.hpp"

#include <fstream>
#include <string>
#include <system_error>

#include "src/base/failpoint.hpp"
#include "src/base/supervision.hpp"

namespace halotis {

namespace {

[[noreturn]] void fail_io(const std::filesystem::path& tmp, const std::string& what) {
  std::error_code ignored;
  std::filesystem::remove(tmp, ignored);  // best effort; never leave the temp
  throw RunError(RunErrorKind::kIoError, what);
}

}  // namespace

void write_file_atomic(const std::filesystem::path& path, std::string_view bytes) {
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (failpoint("io.open") || !file.good()) {
      fail_io(tmp, "cannot open '" + tmp.string() + "' for writing");
    }
    if (failpoint("io.write.short")) {
      // The torn-write scenario: half the bytes land on disk and the writer
      // is told nothing went wrong until the explicit post-write check.
      file.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
      file.flush();
      file.close();
      fail_io(tmp, "short write to '" + tmp.string() + "' (injected; wrote " +
                       std::to_string(bytes.size() / 2) + " of " +
                       std::to_string(bytes.size()) + " bytes)");
    }
    file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (failpoint("io.write")) file.setstate(std::ios::badbit);
    file.flush();
    if (!file.good()) {
      file.close();
      fail_io(tmp, "write to '" + tmp.string() + "' failed (disk full?)");
    }
    file.close();
    if (failpoint("io.close") || file.fail()) {
      fail_io(tmp, "closing '" + tmp.string() + "' failed; data may not have reached disk");
    }
  }
  std::error_code ec;
  if (failpoint("io.rename")) {
    fail_io(tmp, "renaming '" + tmp.string() + "' over '" + path.string() +
                     "' failed (injected)");
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    fail_io(tmp, "renaming '" + tmp.string() + "' over '" + path.string() +
                     "' failed: " + ec.message());
  }
}

}  // namespace halotis
