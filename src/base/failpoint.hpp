// Deterministic fail-point registry (the fault-injection half of the
// supervision layer, see docs/ARCHITECTURE.md "Supervision & failure
// semantics").
//
// A fail point is a named site compiled into ALL builds -- Release
// included -- where a test, the soak harness or an operator can inject a
// failure: an allocation that throws, a file write that goes short, a
// worker task that dies mid-flight, a partition window forced into the
// violation path.  Sites are strings ("io.write", "worker.task", ...; the
// full table lives in docs/ARCHITECTURE.md); arming is done through the
// test API (FailPoints::arm) or a spec string from the HALOTIS_FAILPOINTS
// environment variable / --failpoints CLI flag.
//
// Determinism: a site fires on an exact hit ordinal (the Nth time the
// site is reached while armed), so on a serial run the injected failure
// lands at a reproducible point.  Concurrent runs share the global hit
// counter (which worker observes the firing hit depends on scheduling),
// but the supervision contract only requires that a run that *completes*
// is bit-identical to a clean run -- injected failures abort work, they
// never alter surviving results.
//
// Cost when disarmed: one relaxed atomic load per site visit (the common
// case for every site on the simulator's control paths; no site sits in
// the per-event hot loop).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace halotis {

/// What an armed throwing site injects.  Deliberately NOT a RunError:
/// consumers must prove they map arbitrary internal failures to the
/// structured taxonomy, not just pre-structured ones.
class FailPointError : public std::runtime_error {
 public:
  explicit FailPointError(const std::string& what) : std::runtime_error(what) {}
};

/// Process-global registry of armed fail points.  Thread-safe; the
/// disarmed fast path is lock-free.
class FailPoints {
 public:
  static FailPoints& instance();

  /// Arms `site` to fire exactly once, on the `fire_on_hit`-th visit
  /// (1-based) counted from this arm() call.  With `repeat` set it keeps
  /// firing on every visit from that ordinal on (a persistently failing
  /// disk rather than one transient error).  Re-arming an armed site
  /// replaces its trigger and restarts its counter.
  void arm(std::string_view site, std::uint64_t fire_on_hit = 1, bool repeat = false);

  /// Arms from a spec string: `site[@N][*]` entries separated by `;` or
  /// `,`.  `@N` sets the firing hit ordinal (default 1), a trailing `*`
  /// makes it repeat.  Example: "io.write@2;worker.task*".  Throws
  /// ContractViolation on a malformed spec.
  void arm_spec(std::string_view spec);

  /// Disarms every site and forgets all counters (test isolation).
  void disarm_all();

  /// True when at least one site is armed (the inline fast-path gate).
  [[nodiscard]] bool any_armed() const {
    return armed_sites_.load(std::memory_order_relaxed) != 0;
  }

  /// Visits `site`: counts the hit and reports whether the injected
  /// failure fires now.  Only armed sites are counted (a disarmed
  /// registry costs nothing and remembers nothing).
  [[nodiscard]] bool visit(std::string_view site);

  /// Hits recorded for `site` since it was last armed (0 when not armed;
  /// test diagnostics).
  [[nodiscard]] std::uint64_t hits(std::string_view site) const;

 private:
  FailPoints() = default;

  struct Site {
    std::string name;
    std::uint64_t fire_on_hit = 1;
    std::uint64_t hits = 0;
    bool repeat = false;
    bool fired = false;
  };

  mutable std::mutex mutex_;
  std::vector<Site> sites_;
  std::atomic<std::uint32_t> armed_sites_{0};
};

/// The site check: false (one relaxed load) when nothing is armed.  Use
/// for sites whose failure is a control-flow decision (e.g. forcing a
/// partition-window violation).
[[nodiscard]] inline bool failpoint(std::string_view site) {
  FailPoints& registry = FailPoints::instance();
  if (!registry.any_armed()) return false;
  return registry.visit(site);
}

/// Throwing flavour for error-injection sites: throws FailPointError when
/// the site fires.
inline void failpoint_throw(std::string_view site) {
  if (failpoint(site)) {
    throw FailPointError("injected failure at fail point '" + std::string(site) + "'");
  }
}

}  // namespace halotis
