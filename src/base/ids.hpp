// Strongly-typed arena indices.
//
// HALOTIS stores gates, signals, transitions and events in flat arenas and
// refers to them by index (Core Guidelines R.11: no owning raw pointers;
// indices also survive vector reallocation).  `Id<Tag>` prevents a GateId
// from being passed where a SignalId is expected.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

namespace halotis {

template <class Tag>
class Id {
 public:
  using underlying_type = std::uint32_t;
  static constexpr underlying_type kInvalid = std::numeric_limits<underlying_type>::max();

  constexpr Id() = default;
  constexpr explicit Id(underlying_type value) : value_(value) {}

  [[nodiscard]] constexpr underlying_type value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr bool operator==(Id, Id) = default;
  friend constexpr auto operator<=>(Id, Id) = default;

 private:
  underlying_type value_ = kInvalid;
};

struct GateTag {};
struct SignalTag {};
struct TransitionTag {};
struct EventTag {};
struct CellTag {};

using GateId = Id<GateTag>;
using SignalId = Id<SignalTag>;
using TransitionId = Id<TransitionTag>;
using EventId = Id<EventTag>;
using CellId = Id<CellTag>;

}  // namespace halotis

template <class Tag>
struct std::hash<halotis::Id<Tag>> {
  std::size_t operator()(halotis::Id<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
