#include "src/base/supervision.hpp"

#include <csignal>

#include "src/base/check.hpp"

namespace halotis {

const char* RunError::kind_name(RunErrorKind kind) {
  switch (kind) {
    case RunErrorKind::kBudgetExceeded: return "budget exceeded";
    case RunErrorKind::kDeadlineExceeded: return "deadline exceeded";
    case RunErrorKind::kCancelled: return "cancelled";
    case RunErrorKind::kIoError: return "I/O error";
    case RunErrorKind::kContractViolation: return "contract violation";
  }
  return "unknown";  // unreachable; keeps -Wreturn-type quiet.
}

int RunError::exit_code(RunErrorKind kind) {
  switch (kind) {
    case RunErrorKind::kBudgetExceeded: return 3;
    case RunErrorKind::kDeadlineExceeded: return 4;
    case RunErrorKind::kCancelled: return 5;
    case RunErrorKind::kIoError: return 6;
    case RunErrorKind::kContractViolation: return 1;
  }
  return 1;  // unreachable
}

void RunSupervisor::arm() {
  armed_at_ = std::chrono::steady_clock::now();
  armed_ = true;
}

void RunSupervisor::check_poll(std::uint64_t live_transitions, std::uint64_t arena_bytes,
                               std::string_view where) const {
  if (budget_.max_live_transitions != 0 &&
      live_transitions > budget_.max_live_transitions) {
    throw_budget(where, "live-transition", live_transitions,
                 budget_.max_live_transitions);
  }
  if (budget_.max_arena_bytes != 0 && arena_bytes > budget_.max_arena_bytes) {
    throw_budget(where, "arena-byte", arena_bytes, budget_.max_arena_bytes);
  }
  check_coarse(where);
}

void RunSupervisor::check_coarse(std::string_view where) const {
  if (cancel_.cancelled()) {
    throw RunError(RunErrorKind::kCancelled,
                   std::string(where) + ": run cancelled (cooperative cancellation)");
  }
  if (budget_.deadline_s > 0.0 && armed_) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - armed_at_)
            .count();
    if (elapsed > budget_.deadline_s) {
      throw RunError(RunErrorKind::kDeadlineExceeded,
                     std::string(where) + ": wall-clock deadline of " +
                         std::to_string(budget_.deadline_s) + " s exceeded");
    }
  }
}

void RunSupervisor::throw_budget(std::string_view where, std::string_view what,
                                 std::uint64_t used, std::uint64_t budget) {
  throw RunError(RunErrorKind::kBudgetExceeded,
                 std::string(where) + ": " + std::string(what) + " budget exceeded (" +
                     std::to_string(used) + " > " + std::to_string(budget) + ")");
}

namespace {

// std::signal handlers may only touch lock-free atomics; the CancelToken's
// shared_ptr flag is reached through this process-global pointer, published
// before the handler is installed.
std::atomic<bool>* g_sigint_flag = nullptr;

extern "C" void halotis_sigint_handler(int) {
  if (g_sigint_flag != nullptr) {
    g_sigint_flag->store(true, std::memory_order_relaxed);
  }
  // Second Ctrl-C kills the process the default way: cooperative
  // cancellation is best-effort, the operator keeps the last word.
  std::signal(SIGINT, SIG_DFL);
}

/// Keeps the token (and thus the atomic the handler writes) alive for the
/// process lifetime.
CancelToken& sigint_token_storage() {
  static CancelToken token;
  return token;
}

std::atomic<bool>* g_sigterm_flag = nullptr;

extern "C" void halotis_sigterm_handler(int) {
  if (g_sigterm_flag != nullptr) {
    g_sigterm_flag->store(true, std::memory_order_relaxed);
  }
  // Second SIGTERM kills the process the default way: drain is
  // best-effort, the operator keeps the last word.
  std::signal(SIGTERM, SIG_DFL);
}

CancelToken& sigterm_token_storage() {
  static CancelToken token;
  return token;
}

}  // namespace

void install_sigint_cancel(const CancelToken& token) {
  sigint_token_storage() = token;  // pin the shared state
  g_sigint_flag = sigint_token_storage().raw_flag();
  std::signal(SIGINT, halotis_sigint_handler);
}

void install_sigterm_cancel(const CancelToken& token) {
  sigterm_token_storage() = token;  // pin the shared state
  g_sigterm_flag = sigterm_token_storage().raw_flag();
  std::signal(SIGTERM, halotis_sigterm_handler);
}

}  // namespace halotis
