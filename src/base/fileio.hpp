// Crash-safe artifact emission.
//
// Every artifact HALOTIS writes (VCD, CSV, REPORT.md, HASHES.txt,
// BENCH_kernel.json, converted netlists) goes through write_file_atomic:
// write to `<path>.tmp`, flush, verify the stream, close, verify again,
// then atomically rename over the destination.  A failure at ANY step --
// disk full mid-write, a failed close, a failed rename -- removes the
// temp file and throws RunError(kIoError); the destination is either the
// complete new content or untouched, never a torn prefix.  (A hard crash
// can still leave a stale `<path>.tmp`; the destination stays intact, and
// the next successful write truncates the temp.)
//
// Fail-point sites (docs/ARCHITECTURE.md): `io.open` (destination not
// writable), `io.write` (write error, e.g. disk full), `io.write.short`
// (a short write that "succeeded" -- the torn-artifact case the atomic
// rename exists to contain), `io.close` (error surfaced only at close),
// `io.rename` (rename failure).
#pragma once

#include <filesystem>
#include <string_view>

namespace halotis {

/// Atomically replaces `path` with `bytes` (binary, byte-exact).  Throws
/// RunError(kIoError) on any failure; never leaves a partial `path`.
void write_file_atomic(const std::filesystem::path& path, std::string_view bytes);

}  // namespace halotis
