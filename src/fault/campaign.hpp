// Parallel stuck-at fault-campaign engine.
//
// The legacy run_fault_simulation() rebuilds a full netlist copy and a
// fresh Simulator per fault and replays the complete stimulus even when the
// fault is observable at the first sample.  The campaign engine removes all
// three costs:
//
//   * each worker owns ONE reusable Simulator on the *good* netlist
//     (static tables built once); per fault it reset()s the dynamic state
//     and injects the stuck-at site (Simulator::inject_stuck_at), so no
//     netlist copy and no table rebuild ever happens;
//   * the fault list is sharded across a WorkerPool by an atomic ticket,
//     one fault per ticket;
//   * each faulty run executes in segments between output-sample instants
//     (Simulator::run_until) and stops at the first sampled primary-output
//     divergence -- the early-exit observation hook.
//
// Determinism: every fault's verdict depends only on its own single-fault
// run, and verdicts are aggregated in fault-index order after the sweep, so
// the detected set, the coverage and every derived number are bit-identical
// for any thread count (and identical to the legacy serial engine's
// verdicts).
//
// Early-exit exactness: a sample is evaluated only after the run has
// advanced to the *next* sample instant (one-segment lag) or finished, so
// every annihilation that could retroactively erase a pulse near the sample
// has already been applied -- the inertial/degradation windows (sub-ns) are
// orders of magnitude shorter than a vector period.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/base/worker_pool.hpp"
#include "src/core/delay_model.hpp"
#include "src/core/simulator.hpp"
#include "src/core/stimulus.hpp"
#include "src/fault/fault.hpp"
#include "src/netlist/netlist.hpp"
#include "src/timing/timing_graph.hpp"

namespace halotis {

struct CampaignOptions {
  FaultSimOptions sampling;  ///< sample alignment shared with the legacy engine
  int threads = 0;           ///< worker count; 0 = one per hardware thread
  bool early_exit = true;    ///< stop a faulty run at the first divergence
  /// Optional run supervision (must outlive the call); see
  /// CampaignEngine::supervise for the failure semantics.
  const RunSupervisor* supervisor = nullptr;
};

/// Per-fault verdict bytes (CampaignResult::verdicts).
inline constexpr std::uint8_t kVerdictUndetected = 0;
inline constexpr std::uint8_t kVerdictDetected = 1;
/// The faulty run failed (injected fault-point, allocation failure, budget
/// trip) even after one retry; the fault is neither detected nor counted
/// as coverage-undetected -- see CampaignResult::errors.
inline constexpr std::uint8_t kVerdictError = 2;

struct CampaignResult {
  std::size_t total = 0;
  std::size_t detected = 0;
  std::vector<Fault> undetected;        ///< in fault-index order
  std::vector<std::uint8_t> verdicts;   ///< per input fault index; see kVerdict*
  /// Per input fault index: the failure message when verdicts[i] ==
  /// kVerdictError, empty otherwise.
  std::vector<std::string> error_messages;
  std::size_t errors = 0;   ///< faults whose run failed (verdict kVerdictError)
  std::size_t retried = 0;  ///< faulty runs retried after a transient failure
  std::string first_error;  ///< message of the lowest-index error fault
  int threads_used = 1;
  /// Events processed across all faulty runs plus the good-machine run.
  /// Deterministic (each per-fault count is), so it doubles as a work
  /// metric for the bench trajectory.
  std::uint64_t events_processed = 0;

  /// Detected over total.  Error faults stay in the denominator: a fault
  /// whose run failed was not shown detected, so coverage never improves
  /// because of failures.
  [[nodiscard]] double coverage() const {
    return total > 0 ? static_cast<double>(detected) / static_cast<double>(total) : 0.0;
  }
};

/// The reusable heavy state of a campaign: the worker pool (threads stay
/// alive across runs) and one Simulator per worker plus the good-machine
/// Simulator (static tables built once, dynamic state recycled per run).
/// ATPG constructs one engine and evaluates every candidate vector through
/// it; one-shot callers can use the run_fault_campaign() convenience
/// wrapper.  `netlist` and `model` must outlive the engine.  Not
/// thread-safe: one run() at a time.
class CampaignEngine {
 public:
  CampaignEngine(const Netlist& netlist, const DelayModel& model, int threads = 0);

  /// Runs on an externally elaborated TimingGraph (the daemon's cached
  /// elaboration path): `timing` must be built over this same `netlist`
  /// under the model's policy and must outlive the engine.  Verdicts are
  /// bit-identical to the internally-elaborating constructor.
  CampaignEngine(const Netlist& netlist, const DelayModel& model, const TimingGraph& timing,
                 int threads = 0);
  /// A temporary graph would dangle: bind it to a variable first.
  CampaignEngine(const Netlist&, const DelayModel&, TimingGraph&&, int = 0) = delete;

  [[nodiscard]] int threads() const { return pool_.size(); }

  /// Attaches a run supervisor (nullptr detaches); `supervisor` must
  /// outlive the runs.  Every worker Simulator and the good machine get
  /// per-event supervision; the event / memory budgets therefore apply per
  /// faulty run (each worker sim reset()s between faults), which makes a
  /// budget trip a deterministic property of the single fault -- reported
  /// as a kVerdictError verdict, not a campaign abort.  Deadline expiry
  /// and cancellation abort the whole campaign with the original RunError
  /// rethrown from run() after the in-flight faults drain.
  void supervise(const RunSupervisor* supervisor);
  [[nodiscard]] const RunSupervisor* supervisor() const { return supervisor_; }

  /// Simulates every fault in `faults` (or all 2N enumerated faults when
  /// empty) against `stimulus`.  Verdict semantics match
  /// run_fault_simulation(): a fault is detected iff some primary output
  /// differs from the good machine at some aligned sample instant, with a
  /// faulted primary output observed as the stuck constant itself.
  [[nodiscard]] CampaignResult run(const Stimulus& stimulus,
                                   std::vector<Fault> faults = {},
                                   const FaultSimOptions& sampling = {},
                                   bool early_exit = true);

 private:
  const Netlist* netlist_;
  /// The one elaborated timing database shared (read-only) by the good
  /// machine and every worker Simulator.  Owned when this engine elaborated
  /// it; borrowed (null `owned_timing_`) on the external-graph path.
  std::unique_ptr<TimingGraph> owned_timing_;
  const TimingGraph* timing_;
  WorkerPool pool_;
  Simulator good_;
  std::vector<std::unique_ptr<Simulator>> sims_;  ///< one per worker
  const RunSupervisor* supervisor_ = nullptr;
};

/// One-shot convenience wrapper: builds a CampaignEngine for this call.
[[nodiscard]] CampaignResult run_fault_campaign(const Netlist& netlist,
                                                const Stimulus& stimulus,
                                                const DelayModel& model,
                                                std::vector<Fault> faults = {},
                                                CampaignOptions options = {});

}  // namespace halotis
