#include "src/fault/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>

#include "src/base/check.hpp"
#include "src/base/failpoint.hpp"

namespace halotis {

namespace {

/// Everything one run() shares read-only across the workers.
struct CampaignPlan {
  const Netlist* netlist = nullptr;
  const Stimulus* stimulus = nullptr;
  const std::vector<Fault>* faults = nullptr;
  std::vector<TimeNs> times;
  /// good_samples[o][k]: good-machine value of primary output `o` at
  /// sample instant `times[k]`.
  std::vector<std::vector<bool>> good_samples;
  /// Index into primary_outputs() of each signal that is one (kNotPo
  /// otherwise): resolves "is this fault site a PO" in O(1).
  std::vector<std::uint32_t> po_index;
  bool early_exit = true;
};

constexpr std::uint32_t kNotPo = 0xFFFFFFFFu;

/// Simulates fault `index` on `sim` (recycled via reset()) and returns its
/// verdict.  Bit-deterministic: depends on nothing but the fault and the
/// shared plan.  `events` accumulates this run's processed-event count.
bool simulate_fault(Simulator& sim, const CampaignPlan& plan, std::size_t index,
                    std::uint64_t& events) {
  const Fault& fault = (*plan.faults)[index];
  const auto pos = plan.netlist->primary_outputs();
  const std::vector<TimeNs>& times = plan.times;

  // Deterministic worker-failure injection: fires before any simulator
  // state changes, so a retried task starts clean.
  failpoint_throw("worker.task");

  sim.reset();
  sim.inject_stuck_at(fault.signal, fault.stuck_value);
  sim.apply_stimulus(*plan.stimulus);

  // A faulted primary output is observed as the stuck constant itself
  // (apply_fault() replaces it in the PO list); if the constant already
  // disagrees with any good sample, the fault is detected before
  // simulating anything.
  const std::uint32_t fault_po = plan.po_index[fault.signal.value()];

  const auto diverges_at = [&](std::size_t k) {
    for (std::size_t o = 0; o < pos.size(); ++o) {
      const bool observed =
          o == fault_po ? fault.stuck_value : sim.value_at(pos[o], times[k]);
      if (observed != plan.good_samples[o][k]) return true;
    }
    return false;
  };

  if (fault_po != kNotPo) {
    for (std::size_t k = 0; k < times.size(); ++k) {
      if (fault.stuck_value != plan.good_samples[fault_po][k]) return true;
    }
  }

  if (plan.early_exit) {
    // Segmented run with a one-segment verdict lag: sample k is compared
    // only once every event up to sample k+1 has been applied, so late
    // annihilations of pulses near sample k are already visible (see the
    // header's exactness note).  A detected fault stops simulating here,
    // skipping the rest of the stimulus entirely.
    for (std::size_t seg = 1; seg < times.size(); ++seg) {
      (void)sim.run_until(times[seg]);
      if (diverges_at(seg - 1)) {
        events += sim.stats().events_processed;
        return true;
      }
    }
  }
  (void)sim.run();
  events += sim.stats().events_processed;
  const std::size_t first = plan.early_exit && times.size() > 1 ? times.size() - 1 : 0;
  for (std::size_t k = first; k < times.size(); ++k) {
    if (diverges_at(k)) return true;
  }
  return false;
}

}  // namespace

CampaignEngine::CampaignEngine(const Netlist& netlist, const DelayModel& model,
                               int threads)
    : netlist_(&netlist),
      owned_timing_(std::make_unique<TimingGraph>(
          TimingGraph::build(netlist, model.timing_policy()))),
      timing_(owned_timing_.get()),
      pool_(threads),
      good_(netlist, model, *timing_) {
  // One timing elaboration serves the good machine and every worker: the
  // campaign's thousands of faulty runs all read the same arc table.
  sims_.reserve(static_cast<std::size_t>(pool_.size()));
  for (int w = 0; w < pool_.size(); ++w) {
    sims_.push_back(std::make_unique<Simulator>(netlist, model, *timing_));
  }
}

CampaignEngine::CampaignEngine(const Netlist& netlist, const DelayModel& model,
                               const TimingGraph& timing, int threads)
    : netlist_(&netlist), timing_(&timing), pool_(threads), good_(netlist, model, timing) {
  require(&timing.netlist() == &netlist,
          "CampaignEngine: TimingGraph was elaborated over a different netlist");
  sims_.reserve(static_cast<std::size_t>(pool_.size()));
  for (int w = 0; w < pool_.size(); ++w) {
    sims_.push_back(std::make_unique<Simulator>(netlist, model, timing));
  }
}

void CampaignEngine::supervise(const RunSupervisor* supervisor) {
  supervisor_ = supervisor;
  good_.supervise(supervisor);
  for (auto& sim : sims_) sim->supervise(supervisor);
}

CampaignResult CampaignEngine::run(const Stimulus& stimulus, std::vector<Fault> faults,
                                   const FaultSimOptions& sampling, bool early_exit) {
  require(sampling.sample_period > 0.0, "CampaignEngine::run(): period must be positive");
  if (faults.empty()) faults = enumerate_faults(*netlist_);
  for (const Fault& fault : faults) {
    require(fault.signal.valid() && fault.signal.value() < netlist_->num_signals(),
            "CampaignEngine::run(): invalid fault site");
  }

  CampaignPlan plan;
  plan.netlist = netlist_;
  plan.stimulus = &stimulus;
  plan.faults = &faults;
  plan.times = fault_sample_times(stimulus, sampling);
  plan.early_exit = early_exit;
  plan.po_index.assign(netlist_->num_signals(), kNotPo);
  const auto pos = netlist_->primary_outputs();
  for (std::size_t o = 0; o < pos.size(); ++o) {
    plan.po_index[pos[o].value()] = static_cast<std::uint32_t>(o);
  }

  CampaignResult result;
  result.total = faults.size();
  result.threads_used = pool_.size();
  result.verdicts.assign(faults.size(), kVerdictUndetected);
  result.error_messages.assign(faults.size(), std::string{});

  // Good-machine reference samples (full run; sampled from the final
  // history, so every annihilation is reflected).
  good_.reset();
  good_.apply_stimulus(stimulus);
  (void)good_.run();
  for (const SignalId po : pos) {
    std::vector<bool> row;
    row.reserve(plan.times.size());
    for (const TimeNs t : plan.times) row.push_back(good_.value_at(po, t));
    plan.good_samples.push_back(std::move(row));
  }

  // Shard the fault list: each worker recycles its own Simulator; verdicts
  // and error messages land in per-fault slots, so scheduling order cannot
  // change the result.  Failure semantics (docs/ARCHITECTURE.md):
  //   * deadline / cancellation aborts the whole campaign -- recorded once
  //     here and rethrown below so the caller sees the original RunError
  //     (never a WorkerPoolError wrapper), with in-flight faults drained;
  //   * a per-fault budget trip is deterministic for that fault: verdict
  //     kVerdictError immediately, no retry (it would trip identically);
  //   * any other failure (injected fault point, allocation failure) is
  //     retried once from clean state, then becomes kVerdictError.
  std::vector<std::uint64_t> worker_events(sims_.size(), 0);
  std::vector<std::uint64_t> worker_retries(sims_.size(), 0);
  std::atomic<bool> sup_stopped{false};
  std::mutex sup_mutex;
  std::exception_ptr sup_error;  // guarded by sup_mutex
  pool_.for_each_index(faults.size(), [&](int worker, std::size_t index) {
    const auto w = static_cast<std::size_t>(worker);
    if (sup_stopped.load(std::memory_order_relaxed)) return;  // fast drain
    for (int attempt = 0;; ++attempt) {
      try {
        result.verdicts[index] =
            simulate_fault(*sims_[w], plan, index, worker_events[w])
                ? kVerdictDetected
                : kVerdictUndetected;
        return;
      } catch (const RunError& e) {
        if (e.kind() == RunErrorKind::kDeadlineExceeded ||
            e.kind() == RunErrorKind::kCancelled) {
          std::lock_guard<std::mutex> lock(sup_mutex);
          if (!sup_error) sup_error = std::current_exception();
          sup_stopped.store(true, std::memory_order_relaxed);
          return;
        }
        result.verdicts[index] = kVerdictError;
        result.error_messages[index] = e.what();
        return;
      } catch (const std::exception& e) {
        if (attempt == 0) {
          ++worker_retries[w];
          continue;
        }
        result.verdicts[index] = kVerdictError;
        result.error_messages[index] = e.what();
        return;
      }
    }
  });
  {
    std::lock_guard<std::mutex> lock(sup_mutex);
    if (sup_error) std::rethrow_exception(sup_error);
  }

  // Aggregate in fault-index order: bit-identical for any thread count.
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (result.verdicts[i] == kVerdictDetected) {
      ++result.detected;
    } else if (result.verdicts[i] == kVerdictError) {
      ++result.errors;
      if (result.first_error.empty()) result.first_error = result.error_messages[i];
    } else {
      result.undetected.push_back(faults[i]);
    }
  }
  for (const std::uint64_t r : worker_retries) result.retried += r;
  result.events_processed = good_.stats().events_processed;
  for (const std::uint64_t e : worker_events) result.events_processed += e;
  return result;
}

CampaignResult run_fault_campaign(const Netlist& netlist, const Stimulus& stimulus,
                                  const DelayModel& model, std::vector<Fault> faults,
                                  CampaignOptions options) {
  CampaignEngine engine(netlist, model, options.threads);
  engine.supervise(options.supervisor);
  return engine.run(stimulus, std::move(faults), options.sampling, options.early_exit);
}

}  // namespace halotis
