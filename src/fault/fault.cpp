#include "src/fault/fault.hpp"

#include <algorithm>
#include <span>

#include "src/base/check.hpp"
#include "src/base/rng.hpp"
#include "src/fault/campaign.hpp"

namespace halotis {

std::vector<Fault> enumerate_faults(const Netlist& netlist) {
  std::vector<Fault> faults;
  faults.reserve(2 * netlist.num_signals());
  for (std::size_t s = 0; s < netlist.num_signals(); ++s) {
    const SignalId sid{static_cast<SignalId::underlying_type>(s)};
    faults.push_back(Fault{sid, false});
    faults.push_back(Fault{sid, true});
  }
  return faults;
}

FaultyMachine apply_fault(const Netlist& netlist, const Fault& fault) {
  require(fault.signal.valid() && fault.signal.value() < netlist.num_signals(),
          "apply_fault(): invalid fault site");
  FaultyMachine machine(netlist.library());
  Netlist& out = machine.netlist;

  // Recreate signals in id order so SignalIds line up 1:1 with the good
  // machine; append the constant fault net last.
  for (std::size_t s = 0; s < netlist.num_signals(); ++s) {
    const SignalId sid{static_cast<SignalId::underlying_type>(s)};
    const Signal& sig = netlist.signal(sid);
    const SignalId copy =
        sig.is_primary_input ? out.add_primary_input(sig.name) : out.add_signal(sig.name);
    ensure(copy.value() == sid.value(), "apply_fault(): signal id mismatch");
    if (sig.wire_cap > 0.0) out.set_wire_cap(copy, sig.wire_cap);
  }
  machine.fault_net = out.add_primary_input("__fault");

  const auto redirect = [&](SignalId in) {
    return in == fault.signal ? machine.fault_net : in;
  };
  for (std::size_t g = 0; g < netlist.num_gates(); ++g) {
    const GateId gid{static_cast<GateId::underlying_type>(g)};
    const Gate& gate = netlist.gate(gid);
    std::vector<SignalId> ins;
    ins.reserve(gate.inputs.size());
    for (const SignalId in : gate.inputs) ins.push_back(redirect(in));
    (void)out.add_gate(gate.name, gate.cell, ins, gate.output);
  }
  for (const SignalId po : netlist.primary_outputs()) {
    // A faulted PO is observed as the constant itself.
    out.mark_primary_output(po == fault.signal ? machine.fault_net : po);
  }
  return machine;
}

std::vector<TimeNs> fault_sample_times(const Stimulus& stimulus,
                                       const FaultSimOptions& options) {
  require(options.sample_period > 0.0, "fault_sample_times(): period must be positive");
  require(options.sample_epsilon > 0.0 && options.sample_epsilon < options.sample_period,
          "fault_sample_times(): epsilon must lie inside the period");
  const std::vector<TimeNs> applied = stimulus.edge_times();
  std::vector<TimeNs> times;
  if (applied.empty()) {
    // No vectors at all: a single settled observation of the initial state.
    times.push_back(options.sample_period - options.sample_epsilon);
    return times;
  }
  // Initial-state observation, just before the first vector lands.  (A
  // vector applied at t = 0 leaves no initial window to observe.)
  if (applied.front() > options.sample_epsilon) {
    times.push_back(applied.front() - options.sample_epsilon);
  }
  // One observation per applied vector, taken when its response has settled:
  // just before the next vector lands, or after one period of hold for the
  // last vector.  The old k*period grid observed the pre-vector initial
  // state as sample 1 and drifted off any stimulus whose application
  // instants were not multiples of the sample period, silently skipping
  // vectors -- including the last one under an explicit num_samples budget.
  const std::size_t limit =
      options.num_samples > 0
          ? std::min(applied.size(), static_cast<std::size_t>(options.num_samples))
          : applied.size();
  for (std::size_t j = 0; j < limit; ++j) {
    const TimeNs settled_until = j + 1 < applied.size()
                                     ? applied[j + 1]
                                     : applied[j] + options.sample_period;
    times.push_back(settled_until - options.sample_epsilon);
  }
  return times;
}

FaultSimResult run_fault_simulation(const Netlist& netlist, const Stimulus& stimulus,
                                    const DelayModel& model, std::vector<Fault> faults,
                                    FaultSimOptions options) {
  require(options.sample_period > 0.0, "run_fault_simulation(): period must be positive");
  if (faults.empty()) faults = enumerate_faults(netlist);
  const std::vector<TimeNs> times = fault_sample_times(stimulus, options);

  // Good machine reference samples.
  Simulator good(netlist, model);
  good.apply_stimulus(stimulus);
  (void)good.run();
  std::vector<std::vector<bool>> good_samples;
  for (const SignalId po : netlist.primary_outputs()) {
    std::vector<bool> row;
    for (const TimeNs t : times) row.push_back(good.value_at(po, t));
    good_samples.push_back(std::move(row));
  }

  FaultSimResult result;
  result.total = faults.size();
  for (const Fault& fault : faults) {
    FaultyMachine machine = apply_fault(netlist, fault);

    // Same stimulus, plus the fault constant.
    Stimulus faulty_stim = stimulus;
    faulty_stim.set_initial(machine.fault_net, fault.stuck_value);

    Simulator sim(machine.netlist, model);
    sim.apply_stimulus(faulty_stim);
    (void)sim.run();

    bool detected = false;
    const auto pos = machine.netlist.primary_outputs();
    for (std::size_t o = 0; o < pos.size() && !detected; ++o) {
      for (std::size_t k = 0; k < times.size(); ++k) {
        if (sim.value_at(pos[o], times[k]) != good_samples[o][k]) {
          detected = true;
          break;
        }
      }
    }
    if (detected) {
      ++result.detected;
    } else {
      result.undetected.push_back(fault);
    }
  }
  return result;
}

std::string fault_name(const Netlist& netlist, const Fault& fault) {
  return netlist.signal(fault.signal).name + (fault.stuck_value ? "/SA1" : "/SA0");
}

Stimulus make_vector_stimulus(const Netlist& netlist, std::span<const std::uint64_t> words,
                              TimeNs period, TimeNs slew) {
  require(netlist.primary_inputs().size() <= 64,
          "make_vector_stimulus(): at most 64 primary inputs");
  Stimulus stim(slew);
  stim.apply_sequence(netlist.primary_inputs(), words, period, period);
  return stim;
}

AtpgResult generate_tests(const Netlist& netlist, const DelayModel& model,
                          AtpgOptions options) {
  require(options.max_candidates > 0, "generate_tests(): need at least one candidate");
  AtpgResult result;
  std::vector<Fault> remaining = enumerate_faults(netlist);
  result.total_faults = remaining.size();

  SplitMix64 rng(options.seed);
  const auto num_inputs = netlist.primary_inputs().size();
  const std::uint64_t mask =
      num_inputs >= 64 ? ~0ull : ((1ull << num_inputs) - 1);

  result.words.push_back(0);  // initial state
  FaultSimOptions sampling;
  sampling.sample_period = options.period;
  // One engine for the whole search: the worker pool's threads and every
  // worker's Simulator survive across candidate evaluations.
  CampaignEngine engine(netlist, model, options.threads);
  engine.supervise(options.supervisor);

  // Incremental evaluation: detection compares *settled* primary-output
  // samples, and the settled response of a combinational circuit depends
  // only on the vector being held -- so a candidate only needs to be
  // simulated as the two-word stimulus {last accepted word, candidate}
  // against the surviving fault set.  The old engine replayed the entire
  // accepted prefix for every candidate (quadratic in test-set length)
  // without ever detecting anything new on it: the surviving faults already
  // survived every prefix vector.
  std::uint64_t settled_word = 0;
  for (int candidate = 0;
       candidate < options.max_candidates && !remaining.empty(); ++candidate) {
    if (options.supervisor != nullptr) {
      // Coarse boundary between candidate vectors; the campaign engine's
      // kernels also poll per event.
      options.supervisor->check_coarse("atpg candidate");
    }
    const std::uint64_t word = rng.next() & mask;
    const std::uint64_t trial[2] = {settled_word, word};
    const Stimulus stim =
        make_vector_stimulus(netlist, trial, options.period, options.slew);
    const CampaignResult sim_result = engine.run(stim, remaining, sampling);
    if (sim_result.detected == 0) continue;  // useless vector, discard

    result.words.push_back(word);
    result.detected += sim_result.detected;
    // Keep error-verdict faults in the surviving set (not just the
    // undetected list): an injected failure must never remove a fault
    // from the search as if it had been covered.
    std::vector<Fault> next;
    next.reserve(remaining.size() - sim_result.detected);
    for (std::size_t i = 0; i < remaining.size(); ++i) {
      if (sim_result.verdicts[i] != kVerdictDetected) next.push_back(remaining[i]);
    }
    remaining = std::move(next);
    settled_word = word;
  }
  result.undetected = std::move(remaining);
  return result;
}

}  // namespace halotis
