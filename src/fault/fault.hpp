// Stuck-at fault simulation on top of the timing simulator.
//
// A classic gate-level EDA substrate: enumerate single stuck-at faults on
// every signal line, replay a test sequence on each faulty machine and
// compare sampled primary outputs against the good machine.  Because the
// underlying engine is a *timing* simulator, detection is evaluated at
// specified sample instants (end of each vector period), which exposes an
// effect pure logic fault simulators cannot show: a fault whose only
// visible difference is a glitch may be "detected" under a conventional
// delay model yet undetectable in silicon -- the IDDM filters it.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "src/base/units.hpp"
#include "src/core/delay_model.hpp"
#include "src/core/simulator.hpp"
#include "src/netlist/netlist.hpp"

namespace halotis {

/// One single stuck-at fault on a signal line.
struct Fault {
  SignalId signal;
  bool stuck_value = false;

  friend bool operator==(const Fault&, const Fault&) = default;
};

/// All 2N candidate faults (primary inputs included; they model pad
/// defects).
[[nodiscard]] std::vector<Fault> enumerate_faults(const Netlist& netlist);

/// Builds the faulty machine: a copy of `netlist` where every receiver of
/// the faulted line is rewired to a constant net, and the faulted line
/// itself (if a primary output) is replaced by the constant.  The returned
/// netlist has one extra primary input named "__fault" that the fault
/// simulator ties to the stuck value.
struct FaultyMachine {
  Netlist netlist;
  SignalId fault_net;

  explicit FaultyMachine(const Library& lib) : netlist(lib) {}
};
[[nodiscard]] FaultyMachine apply_fault(const Netlist& netlist, const Fault& fault);

struct FaultSimOptions {
  /// Hold time granted to the LAST vector: the final sample is taken at
  /// last_application + period - epsilon.  (Earlier samples align to the
  /// stimulus's own application instants, not to a k*period grid.)
  TimeNs sample_period = 5.0;
  TimeNs sample_epsilon = 0.1;
  /// Number of vector observations; 0 observes every applied vector.  An
  /// initial-state observation is included on top whenever the first
  /// vector lands after t = epsilon (a vector at t = 0 leaves no initial
  /// window to observe).
  int num_samples = 0;
};

/// The instants the fault simulator samples primary outputs at, aligned to
/// the stimulus's vector application times: the settled response of each
/// applied vector is observed just before the next vector lands (epsilon
/// early), the last one after `sample_period` of hold.  An initial-state
/// observation precedes the first vector.  Shared by the legacy serial
/// engine and the parallel campaign so verdicts agree.
[[nodiscard]] std::vector<TimeNs> fault_sample_times(const Stimulus& stimulus,
                                                     const FaultSimOptions& options);

struct FaultSimResult {
  std::size_t total = 0;
  std::size_t detected = 0;
  std::vector<Fault> undetected;

  [[nodiscard]] double coverage() const {
    return total > 0 ? static_cast<double>(detected) / static_cast<double>(total) : 0.0;
  }
};

/// Serial fault simulation of every fault in `faults` (or all, if empty)
/// under `model`.  The same `stimulus` drives good and faulty machines;
/// detection compares sampled primary-output values.
[[nodiscard]] FaultSimResult run_fault_simulation(const Netlist& netlist,
                                                  const Stimulus& stimulus,
                                                  const DelayModel& model,
                                                  std::vector<Fault> faults = {},
                                                  FaultSimOptions options = {});

/// Human-readable fault name, e.g. "n3/SA0".
[[nodiscard]] std::string fault_name(const Netlist& netlist, const Fault& fault);

/// Builds a stimulus applying integer `words` across the primary inputs
/// (bit i drives primary_inputs()[i]), one word per `period`, first word
/// as the initial state.
[[nodiscard]] Stimulus make_vector_stimulus(const Netlist& netlist,
                                            std::span<const std::uint64_t> words,
                                            TimeNs period = 5.0, TimeNs slew = 0.5);

// ---- ATPG (random-search test generation) ----------------------------------

struct AtpgOptions {
  int max_candidates = 200;   ///< random vectors to try
  TimeNs period = 5.0;
  TimeNs slew = 0.5;
  std::uint64_t seed = 1;
  /// Worker threads for evaluating each candidate against the surviving
  /// fault set (0 = one per hardware thread).  The generated test set is
  /// thread-count-invariant.
  int threads = 1;
  /// Optional run supervision (must outlive the call): threaded through
  /// the campaign engine (per-event kernel checks) plus a coarse deadline /
  /// cancellation check between candidate vectors.  Faults whose runs
  /// error stay in the surviving set, so injected failures can only shrink
  /// reported coverage, never inflate it.
  const RunSupervisor* supervisor = nullptr;
};

struct AtpgResult {
  std::vector<std::uint64_t> words;  ///< the generated compact test set
  std::size_t total_faults = 0;
  std::size_t detected = 0;
  std::vector<Fault> undetected;

  [[nodiscard]] double coverage() const {
    return total_faults > 0
               ? static_cast<double>(detected) / static_cast<double>(total_faults)
               : 0.0;
  }
};

/// Greedy random-search ATPG: proposes random vectors, keeps each one that
/// detects at least one still-undetected stuck-at fault (evaluated with the
/// timing simulator under `model`), and stops at full coverage or after
/// `max_candidates` proposals.  Returns the compact test set.
///
/// Evaluation is incremental: each candidate is simulated as the two-word
/// stimulus {last accepted word, candidate} against the surviving fault set
/// only -- equivalent to replaying the whole accepted prefix, because
/// detection compares settled samples and the survivors already survived
/// every prefix vector.  Replaying the returned `words` with
/// run_fault_simulation() reproduces `detected` exactly.
[[nodiscard]] AtpgResult generate_tests(const Netlist& netlist, const DelayModel& model,
                                        AtpgOptions options = {});

}  // namespace halotis
