// Entry point for the `halotis` command-line tool.
#include <iostream>
#include <string>
#include <vector>

#include "src/tools/cli.hpp"

int main(int argc, char** argv) {
  // First Ctrl-C trips the cooperative token (supervised work unwinds with
  // exit 5 and artifacts stay whole); a second falls back to SIG_DFL.
  halotis::install_sigint_cancel(halotis::cli_cancel_token());
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return halotis::run_cli(args, std::cout, std::cerr);
}
