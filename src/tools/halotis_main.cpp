// Entry point for the `halotis` command-line tool.
#include <iostream>
#include <string>
#include <vector>

#include "src/tools/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return halotis::run_cli(args, std::cout, std::cerr);
}
