// The `halotis` command-line driver, as a library so tests can exercise it.
//
// Subcommands:
//   sim     --netlist F [--stim F] [--model ddm|cdm|transport] [--t-end NS]
//           [--sdf F] [--vcd F] [--report] [--waves]
//                                               event-driven simulation
//                                               (--sdf back-annotates the
//                                               timing database first)
//   analog  --netlist F [--stim F] [--t-end NS] [--csv F]
//                                               transistor-level reference
//   sta     --netlist F [--slew NS] [--sdf F] [--per-arc]
//                                               static timing analysis over
//                                               the elaborated TimingGraph
//   fault   --netlist F --stim F [--model M]    stuck-at fault simulation
//   repro   [--list] [--only ID[,...]] [--quick] [--out DIR] [--golden F]
//                                               paper-reproduction engine
//   convert --netlist F --to bench|verilog|native|sdf [--out F]
//   serve   --socket PATH [--threads N] [--cache-mb M]
//                                               resident daemon; sim / sta /
//                                               fault / variation requests
//                                               route to it via --connect
//
// Netlist formats are detected from the file extension (.bench, .v,
// anything else = native) unless --format overrides.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/base/supervision.hpp"

namespace halotis {

namespace serve {
struct ServeContext;
struct RequestIo;
}  // namespace serve

/// The process-wide cancellation token every supervised command polls.
/// halotis_main routes SIGINT into it (install_sigint_cancel); tests can
/// trip it directly to exercise the cancellation path in-process.
[[nodiscard]] const CancelToken& cli_cancel_token();

/// Runs the CLI; returns the process exit code (see the README exit-code
/// table: 0 ok, 1 contract violation / generic failure, 2 usage, 3 budget
/// exceeded, 4 deadline exceeded, 5 cancelled, 6 I/O error).  `args`
/// excludes argv[0].
int run_cli(const std::vector<std::string>& args, std::ostream& out, std::ostream& err);

/// run_cli with the daemon seam exposed: non-null `context` / `io` mark a
/// daemon-side request, which resolves input paths against the files the
/// client shipped, collects artifacts into the response frame, consults the
/// keyed elaboration cache, and serves a restricted command surface (sim,
/// sta, fault, variation).  run_cli(a, o, e) == run_cli_service(a, o, e,
/// nullptr, nullptr).  This is the production serve::Executor -- `halotis
/// serve` wires it into the Server (docs/DAEMON.md).
int run_cli_service(const std::vector<std::string>& args, std::ostream& out,
                    std::ostream& err, serve::ServeContext* context, serve::RequestIo* io);

/// Usage text.
[[nodiscard]] std::string cli_usage();

}  // namespace halotis
