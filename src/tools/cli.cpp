#include "src/tools/cli.hpp"

#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "src/analog/analog_sim.hpp"
#include "src/base/check.hpp"
#include "src/base/failpoint.hpp"
#include "src/base/fileio.hpp"
#include "src/base/strings.hpp"
#include "src/core/partition.hpp"
#include "src/core/simulator.hpp"
#include "src/fault/campaign.hpp"
#include "src/fault/fault.hpp"
#include "src/lint/lint.hpp"
#include "src/netlist/library.hpp"
#include "src/parsers/bench_format.hpp"
#include "src/parsers/hierarchy.hpp"
#include "src/parsers/netlist_io.hpp"
#include "src/parsers/sdf.hpp"
#include "src/parsers/stimulus_file.hpp"
#include "src/parsers/verilog.hpp"
#include "src/power/activity.hpp"
#include "src/replay/history_hash.hpp"
#include "src/replay/resim.hpp"
#include "src/replay/variation.hpp"
#include "src/repro/experiment.hpp"
#include "src/repro/runner.hpp"
#include "src/serve/client.hpp"
#include "src/serve/elaboration.hpp"
#include "src/serve/server.hpp"
#include "src/serve/service.hpp"
#include "src/sta/sta.hpp"
#include "src/timing/timing_graph.hpp"
#include "src/waveform/ascii_plot.hpp"
#include "src/waveform/vcd.hpp"

namespace halotis {

namespace {

/// A malformed or contradictory command line: exits 2 with the usage text
/// (distinct from ContractViolation / RunError failures, which exit 1+).
struct UsageError : std::runtime_error {
  explicit UsageError(const std::string& what) : std::runtime_error(what) {}
};

struct Options {
  std::string command;
  std::map<std::string, std::string> flags;

  [[nodiscard]] std::optional<std::string> get(const std::string& name) const {
    const auto it = flags.find(name);
    if (it == flags.end()) return std::nullopt;
    return it->second;
  }
  [[nodiscard]] std::string require_flag(const std::string& name) const {
    const auto value = get(name);
    require(value.has_value(), "missing required flag --" + name);
    return *value;
  }
  [[nodiscard]] double number(const std::string& name, double fallback) const {
    const auto value = get(name);
    if (!value.has_value()) return fallback;
    return parse_double(*value, "--" + name);
  }
};

/// Strict unsigned-integer flag parse (decimal or 0x-hex).  Anything that
/// is not a whole integer -- `--samples 1.5`, `--seed banana`, an empty
/// value -- is a usage error (exit 2), never a silent clamp through the
/// double round-trip that `number()` would apply.
std::uint64_t usage_unsigned(const Options& options, const std::string& name,
                             std::uint64_t fallback) {
  const auto value = options.get(name);
  if (!value.has_value()) return fallback;
  const std::string& text = *value;
  int base = 10;
  std::size_t start = 0;
  if (text.size() > 2 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X')) {
    base = 16;
    start = 2;
  }
  std::uint64_t parsed = 0;
  const char* first = text.data() + start;
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, parsed, base);
  if (first == last || ec != std::errc{} || ptr != last) {
    throw UsageError("--" + name + " expects an unsigned integer, got '" + text + "'");
  }
  return parsed;
}

[[nodiscard]] std::string hex64(std::uint64_t v) {
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "%016llx", static_cast<unsigned long long>(v));
  return buffer;
}

Options parse_args(const std::vector<std::string>& args) {
  require(!args.empty(), "no command given");
  Options options;
  options.command = args[0];
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    require(starts_with(arg, "--"), "expected --flag, got '" + arg + "'");
    const std::string name = arg.substr(2);
    // Boolean flags (no value) vs valued flags.
    if (i + 1 < args.size() && !starts_with(args[i + 1], "--")) {
      options.flags[name] = args[i + 1];
      ++i;
    } else {
      options.flags[name] = "1";
    }
  }
  return options;
}

/// Which side of the daemon seam this invocation runs on: plain local mode
/// (both null) or a daemon-side request (context + io set; see
/// run_cli_service).  Cheap to copy; threaded by value through the command
/// helpers.
struct ServiceEnv {
  serve::ServeContext* ctx = nullptr;
  serve::RequestIo* io = nullptr;
  [[nodiscard]] bool daemon() const { return io != nullptr; }
};

/// The one process-wide cell library.  Cached Elaborations keep Netlists
/// that point into it across requests, so it must outlive every cache
/// entry -- a function-local static, never a per-command stack copy.
const Library& default_library() {
  static const Library lib = Library::default_u6();
  return lib;
}

/// Builds the run supervisor for sim/fault/repro from the shared budget
/// flags (--budget-events, --budget-mem-mb, --deadline-s; 0 / absent =
/// unlimited) wired to the process-wide SIGINT token -- or, under the
/// daemon, to the daemon's drain token, so shutdown unwinds in-flight
/// requests (exit 5) instead of waiting them out.  Every supervised
/// command attaches one even with no budget set, so Ctrl-C always unwinds
/// cleanly with exit 5.
RunSupervisor make_supervisor(const Options& options, const ServiceEnv& env = {}) {
  RunBudget budget;
  budget.max_events = static_cast<std::uint64_t>(options.number("budget-events", 0.0));
  budget.max_arena_bytes =
      static_cast<std::uint64_t>(options.number("budget-mem-mb", 0.0) * 1024.0 * 1024.0);
  budget.deadline_s = options.number("deadline-s", 0.0);
  RunSupervisor supervisor(budget,
                           env.ctx != nullptr ? env.ctx->stop : cli_cancel_token());
  supervisor.arm();
  // A token tripped before the run starts (Ctrl-C during parsing) exits 5
  // here, deterministically -- a tiny workload might otherwise finish
  // without ever reaching a poll.
  supervisor.check_coarse("startup");
  return supervisor;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Reads one named input through the request's virtual filesystem: a
/// daemon request resolves the path against the files the client shipped
/// in the request frame (the daemon never opens client paths itself);
/// local mode reads the real file.  The error text matches read_file, so
/// responses stay byte-identical to local runs.
std::string read_input(const ServiceEnv& env, const std::string& path) {
  if (env.daemon()) {
    const auto it = env.io->files.find(path);
    require(it != env.io->files.end(), "cannot open '" + path + "'");
    return it->second;
  }
  return read_file(path);
}

/// Publishes one output artifact: collected into the response frame under
/// the daemon (the *client* writes it via write_file_atomic on receipt),
/// written atomically right here in local mode.  Either way the console
/// gets the same "wrote PATH" line at the same position.
void publish_artifact(const ServiceEnv& env, const std::string& path, std::string bytes,
                      std::ostream& out) {
  if (env.daemon()) {
    env.io->artifacts.emplace_back(path, std::move(bytes));
  } else {
    write_file_atomic(path, bytes);
  }
  out << "wrote " << path << "\n";
}

std::string extension_format(const std::string& path) {
  if (path.size() >= 6 && path.substr(path.size() - 6) == ".bench") return "bench";
  if (path.size() >= 2 && path.substr(path.size() - 2) == ".v") return "verilog";
  return "native";
}

std::string detect_format(const Options& options, const std::string& path) {
  if (const auto fmt = options.get("format")) return *fmt;
  return extension_format(path);
}

Netlist load_netlist_file(const std::string& path, const std::string& format,
                          const Library& lib) {
  const std::string text = read_file(path);
  if (format == "bench") return read_bench(text, lib);
  if (format == "verilog") return read_verilog(text, lib);
  if (format == "native") {
    // Native files may use the flat or the hierarchical dialect.
    return looks_hierarchical(text) ? read_hierarchical(text, lib)
                                    : read_netlist(text, lib);
  }
  require(false, "unknown netlist format '" + format + "'");
  return Netlist(lib);  // unreachable
}

Netlist load_netlist(const Options& options, const Library& lib) {
  const std::string path = options.require_flag("netlist");
  return load_netlist_file(path, detect_format(options, path), lib);
}

std::unique_ptr<DelayModel> make_model(const Options& options) {
  const std::string name = options.get("model").value_or("ddm");
  if (name == "ddm") return std::make_unique<DdmDelayModel>();
  if (name == "cdm") return std::make_unique<CdmDelayModel>();
  if (name == "cdm-classical") {
    return std::make_unique<CdmDelayModel>(CdmDelayModel::InertialWindow::kGateDelay);
  }
  if (name == "transport") {
    return std::make_unique<CdmDelayModel>(CdmDelayModel::InertialWindow::kNone);
  }
  require(false, "unknown model '" + name + "' (ddm|cdm|cdm-classical|transport)");
  return nullptr;  // unreachable
}

Stimulus load_stimulus(const ServiceEnv& env, const Options& options,
                       const Netlist& netlist) {
  if (const auto path = options.get("stim")) {
    return read_stimulus(read_input(env, *path), netlist);
  }
  return Stimulus(0.5);  // quiescent testbench
}

/// Elaborates the netlist's TimingGraph under `policy` and, with --sdf,
/// back-annotates it from the given file (reporting the override count).
TimingGraph load_timing(const Options& options, const Netlist& netlist,
                        const TimingPolicy& policy, std::ostream& out) {
  TimingGraph graph = TimingGraph::build(netlist, policy);
  if (const auto sdf_path = options.get("sdf")) {
    const SdfFile sdf = read_sdf(read_file(*sdf_path));
    const std::size_t applied = apply_sdf(graph, sdf);
    out << "annotated " << applied << " IOPATH record" << (applied == 1 ? "" : "s")
        << " from " << *sdf_path;
    if (!sdf.design.empty()) out << " (design \"" << sdf.design << "\")";
    out << "\n";
    // A partial SDF used to keep library delays on the missing arcs without
    // a trace -- exactly the silent-mismatch the annotation flow exists to
    // prevent.  Warn per pin (capped), and lint reports the same set as
    // TIM-SDF-MISSING findings.
    const std::vector<PinRef> missing = sdf_unannotated_pins(graph);
    constexpr std::size_t kMaxListed = 20;
    for (std::size_t i = 0; i < missing.size() && i < kMaxListed; ++i) {
      out << "warning: sdf: no IOPATH for gate '"
          << netlist.gate(missing[i].gate).name << "' pin "
          << sdf_port_name(missing[i].pin) << " -- keeping library delay\n";
    }
    if (missing.size() > kMaxListed) {
      out << "warning: sdf: ... and " << missing.size() - kMaxListed
          << " more unannotated gate inputs\n";
    }
  }
  return graph;
}

/// The elaboration path shared by sim / sta / fault / variation in both
/// modes: parse + TimingGraph::build + optional SDF annotation, keyed off
/// the input *bytes*.  Daemon requests consult the keyed LRU cache (a warm
/// hit skips the whole pipeline); local mode builds fresh.  Both modes run
/// the identical serve::build_elaboration, so results and console output
/// cannot depend on which side -- or which cache state -- served the
/// request.
std::shared_ptr<const serve::Elaboration> service_elaboration(const ServiceEnv& env,
                                                              const Options& options,
                                                              const TimingPolicy& policy,
                                                              bool want_sdf) {
  const std::string path = options.require_flag("netlist");
  const std::string format = detect_format(options, path);
  const std::string netlist_text = read_input(env, path);
  std::optional<std::string> sdf_text;
  if (want_sdf) {
    if (const auto sdf_path = options.get("sdf")) sdf_text = read_input(env, *sdf_path);
  }
  const std::string* sdf_ptr = sdf_text.has_value() ? &*sdf_text : nullptr;
  if (env.ctx != nullptr && env.ctx->cache != nullptr) {
    const std::uint64_t key =
        serve::elaboration_key(format, netlist_text, policy, sdf_ptr);
    return env.ctx->cache->get_or_build(key, [&] {
      return serve::build_elaboration(default_library(), netlist_text, format, policy,
                                      sdf_ptr);
    });
  }
  return serve::build_elaboration(default_library(), netlist_text, format, policy,
                                  sdf_ptr);
}

/// `sim --sdf A.sdf[,B.sdf...] --replay`: records the causal trace once
/// under library timing, then re-times every SDF corner through the
/// replayer, falling back to a full event simulation for any corner that
/// breaks a recorded ordering/filtering decision (docs/REPLAY.md).
int sim_replay_corners(const ServiceEnv& env, const Options& options,
                       const Netlist& netlist, const DelayModel& model,
                       const Stimulus& stimulus, std::ostream& out) {
  const auto sdf_flag = options.get("sdf");
  if (!sdf_flag.has_value()) {
    throw UsageError("sim --replay needs --sdf corner file(s) to re-time");
  }
  if (static_cast<int>(options.number("threads", 1)) != 1 ||
      options.number("partitions", 0.0) != 0.0) {
    throw UsageError("sim --replay requires the serial kernel (--threads 1)");
  }
  if (options.get("report") || options.get("vcd") || options.get("waves")) {
    throw UsageError(
        "sim --replay re-times arrival times and waveform hashes only; "
        "drop --report/--vcd/--waves");
  }
  std::vector<std::string> corners;
  for (const std::string& path : split(*sdf_flag, ',')) {
    if (!path.empty()) corners.push_back(path);
  }
  if (corners.empty()) throw UsageError("--sdf lists no corner files");

  SimConfig config;
  config.t_end = options.number("t-end", kNeverNs);
  const RunSupervisor supervisor = make_supervisor(options, env);

  replay::ResimEngine engine(netlist, model, stimulus, config);
  // Record at the first corner's elaboration: the trace's scheduling
  // decisions then hold exactly for that corner (bit-exact fast replay)
  // and usually for the neighbouring corners of the same annotation.
  const std::size_t ref_applied = apply_sdf(engine.base_graph_mutable(),
                                            read_sdf(read_input(env, corners.front())));
  engine.record(&supervisor);
  const replay::Trace& trace = engine.trace();
  out << "model: " << model.name() << "\n";
  out << "reference corner " << corners.front() << ": " << ref_applied
      << " IOPATH records annotate the recording\n";
  out << "recorded trace: " << trace.ops.size() << " ops ("
      << (trace.op_bytes() + 1023) / 1024 << " KiB), " << trace.num_events
      << " events"
      << (trace.replayable ? "" : " -- not replayable (event limit), corners run full")
      << "\n";

  replay::ResimSession session(engine);
  for (const std::string& path : corners) {
    TimingGraph corner = engine.base_graph();
    const SdfFile sdf = read_sdf(read_input(env, path));
    const std::size_t applied = apply_sdf(corner, sdf);
    const replay::ResimSample sample = session.evaluate(
        corner, netlist.primary_outputs(), /*want_hash=*/true, &supervisor);
    out << "corner " << path << ": " << applied << " IOPATH record"
        << (applied == 1 ? "" : "s") << ", critical t50 "
        << format_double(sample.critical_t50, 9) << " ns, hash "
        << hex64(sample.history_hash)
        << (sample.fallback ? " [full fallback]" : " [replayed]") << "\n";
  }
  if (session.fallbacks() > 0) {
    out << "fallbacks: " << session.fallbacks() << " / " << corners.size()
        << " corners\n";
  }
  return 0;
}

int cmd_sim(const Options& options, std::ostream& out, const ServiceEnv& env) {
  const std::unique_ptr<DelayModel> model = make_model(options);
  const bool replay = options.get("replay").has_value();
  // One elaborated timing database for the run; --sdf back-annotates it
  // (the third-party-netlist scenario: IOPATH delays replace the library's
  // conventional part, the inertial/degradation treatment stays).  Under
  // --replay the flag instead lists corner files, so the elaboration skips
  // it (sim_replay_corners annotates its own graphs per corner).
  const std::shared_ptr<const serve::Elaboration> elab =
      service_elaboration(env, options, model->timing_policy(), /*want_sdf=*/!replay);
  const Netlist& netlist = elab->netlist;
  const Stimulus stimulus = load_stimulus(env, options, netlist);
  if (replay) {
    return sim_replay_corners(env, options, netlist, *model, stimulus, out);
  }
  if (const auto sdf_path = options.get("sdf")) {
    serve::print_sdf_facts(out, elab->sdf, *sdf_path);
  }
  const TimingGraph& timing = elab->graph;

  SimConfig config;
  config.t_end = options.number("t-end", kNeverNs);
  const RunSupervisor supervisor = make_supervisor(options, env);

  const int threads = static_cast<int>(options.number("threads", 1));
  const auto partitions = static_cast<std::uint32_t>(options.number("partitions", 0));
  require(threads >= 0, "--threads must be >= 0 (0 = all hardware threads)");

  const auto print_run = [&](const RunResult& result, const SimStats& stats) {
    out << "model: " << model->name() << "\n";
    out << "finished at t = " << format_double(result.end_time, 6) << " ns ("
        << (result.reason == StopReason::kQueueExhausted    ? "queue exhausted"
            : result.reason == StopReason::kHorizonReached  ? "horizon reached"
                                                            : "event limit")
        << ")\n";
    out << "events: processed " << stats.events_processed << ", filtered "
        << stats.filtered_events() << ", transitions "
        << stats.surviving_transitions() << "\n";
  };
  const auto print_finals = [&](const auto& sim) {
    out << "final output values:\n";
    for (const SignalId po : netlist.primary_outputs()) {
      out << "  " << netlist.signal(po).name << " = "
          << (sim.final_value(po) ? 1 : 0) << "\n";
    }
  };

  if (threads != 1 || partitions != 0) {
    // Partitioned parallel kernel: bit-identical history at any thread
    // count (see src/core/partition.hpp); the analysis flags that consume
    // the full per-signal database stay serial-only.
    require(!options.get("report") && !options.get("vcd"),
            "--report/--vcd require the serial kernel (--threads 1)");
    PartitionedConfig pconfig;
    pconfig.threads = threads;
    pconfig.partitions = partitions;
    pconfig.sim = config;
    PartitionedSimulator sim(netlist, *model, timing, pconfig);
    sim.supervise(&supervisor);
    sim.apply_stimulus(stimulus);
    const RunResult result = sim.run();
    print_run(result, sim.stats());
    const WindowStats& ws = sim.window_stats();
    out << "partitions: " << sim.plan().k << ", windows " << ws.windows
        << ", boundary messages " << ws.messages;
    if (ws.fell_back_serial) {
      out << " (violations " << ws.violations << " -> serial fallback)";
    }
    out << "\n";
    print_finals(sim);
    if (options.get("hash")) {
      out << "history hash: " << hex64(replay::hash_sim_history(sim)) << "\n";
    }
    if (options.get("waves")) {
      const TimeNs horizon = std::max(result.end_time, 1.0);
      AsciiPlot plot(0.0, horizon * 1.05, 100);
      for (const SignalId po : netlist.primary_outputs()) {
        plot.add_digital(netlist.signal(po).name,
                         DigitalWaveform::from_transitions(sim.initial_value(po),
                                                           sim.history(po)));
      }
      out << '\n' << plot.render();
    }
    return 0;
  }

  // Daemon workers recycle one pooled Simulator across requests
  // (SimulatorLease rebind()s it onto this request's elaboration -- results
  // are bit-identical to a fresh construction); local mode builds its own.
  std::unique_ptr<Simulator> owned_sim;
  Simulator* simp = nullptr;
  if (env.daemon() && env.io->lease != nullptr) {
    simp = &env.io->lease->acquire(elab, *model, config);
  } else {
    owned_sim = std::make_unique<Simulator>(netlist, *model, timing, config);
    simp = owned_sim.get();
  }
  Simulator& sim = *simp;
  sim.supervise(&supervisor);
  sim.apply_stimulus(stimulus);
  const RunResult result = sim.run();

  print_run(result, sim.stats());
  if (result.reason == StopReason::kEventLimit) {
    out << "event limit hit -- most active signals (possible oscillation):\n";
    for (const SignalId sig : sim.most_active_signals(5)) {
      out << "  " << netlist.signal(sig).name << ": " << sim.toggle_count(sig)
          << " transitions\n";
    }
  }
  print_finals(sim);
  if (options.get("hash")) {
    out << "history hash: " << hex64(replay::hash_sim_history(sim)) << "\n";
  }

  if (options.get("report")) {
    out << '\n' << format_activity(compute_activity(sim), 20);
  }
  if (options.get("waves")) {
    const TimeNs horizon = std::max(result.end_time, 1.0);
    AsciiPlot plot(0.0, horizon * 1.05, 100);
    for (const SignalId po : netlist.primary_outputs()) {
      plot.add_digital(netlist.signal(po).name,
                       DigitalWaveform::from_transitions(sim.initial_value(po),
                                                         sim.history(po)));
    }
    out << '\n' << plot.render();
  }
  if (const auto vcd_path = options.get("vcd")) {
    const VcdWriter vcd = vcd_from_simulator(sim);
    std::ostringstream bytes;
    vcd.write(bytes);
    publish_artifact(env, *vcd_path, bytes.str(), out);
  }
  return 0;
}

/// Monte-Carlo per-gate delay variation.  With --replay, samples re-time
/// a recorded trace instead of re-simulating; the CSV/report artifacts
/// are byte-identical with or without it, at any thread count.
int cmd_variation(const Options& options, std::ostream& out, const ServiceEnv& env) {
  const std::unique_ptr<DelayModel> model = make_model(options);
  // Variation builds per-sample graphs itself, so only the parsed netlist
  // is consumed here -- it still flows through the shared elaboration so a
  // daemon serves it from (and primes) the same cache entry sim/sta use.
  const std::shared_ptr<const serve::Elaboration> elab =
      service_elaboration(env, options, model->timing_policy(), /*want_sdf=*/false);
  const Netlist& netlist = elab->netlist;
  const Stimulus stimulus = load_stimulus(env, options, netlist);

  replay::VariationConfig config;
  const std::uint64_t samples = usage_unsigned(options, "samples", 200);
  if (samples < 1) throw UsageError("--samples must be >= 1");
  config.samples = static_cast<std::size_t>(samples);
  config.seed = usage_unsigned(options, "seed", 1);
  config.sigma = options.number("sigma", 0.1);
  if (!(config.sigma >= 0.0)) throw UsageError("--sigma must be >= 0");
  config.threads = static_cast<int>(options.number("threads", 1));
  if (config.threads < 0) {
    throw UsageError("--threads must be >= 0 (0 = all hardware threads)");
  }
  config.use_replay = options.get("replay").has_value();
  config.sim.t_end = options.number("t-end", kNeverNs);

  const RunSupervisor supervisor = make_supervisor(options, env);
  const replay::VariationResult result = replay::run_variation(
      netlist, *model, stimulus, netlist.primary_outputs(), config, &supervisor);

  out << replay::format_variation_report(result, config);
  if (result.replay_used) {
    // Console-only diagnostics: the artifacts below carry no mode, thread,
    // or fallback information (byte-identity across modes).
    out << "replay: " << (result.rows.size() - result.fallbacks) << " replayed, "
        << result.fallbacks << " full fallback" << (result.fallbacks == 1 ? "" : "s")
        << "\n";
  }
  if (const auto csv_path = options.get("csv")) {
    publish_artifact(env, *csv_path, replay::format_variation_csv(result), out);
  }
  if (const auto report_path = options.get("out")) {
    publish_artifact(env, *report_path, replay::format_variation_report(result, config),
                     out);
  }
  return 0;
}

int cmd_analog(const Options& options, std::ostream& out) {
  const Netlist netlist = load_netlist(options, default_library());
  const Stimulus stimulus = load_stimulus({}, options, netlist);
  const TimeNs t_end = options.number("t-end", stimulus.last_edge_time() + 10.0);

  AnalogSim sim(netlist);
  sim.apply_stimulus(stimulus);
  sim.run(t_end);
  out << "analog reference: " << sim.steps() << " steps, " << sim.stage_evals()
      << " stage evaluations\n";
  out << "final output values:\n";
  for (const SignalId po : netlist.primary_outputs()) {
    out << "  " << netlist.signal(po).name << " = "
        << format_double(sim.voltage(po), 4) << " V\n";
  }
  if (const auto csv_path = options.get("csv")) {
    std::ostringstream csv;
    csv << "t_ns";
    for (const SignalId po : netlist.primary_outputs()) {
      csv << ',' << netlist.signal(po).name;
    }
    csv << '\n';
    const AnalogTrace& first = sim.trace(netlist.primary_outputs()[0]);
    for (std::size_t i = 0; i < first.size(); ++i) {
      csv << format_double(first.time_of(i), 6);
      for (const SignalId po : netlist.primary_outputs()) {
        csv << ',' << format_double(sim.trace(po).sample(i), 5);
      }
      csv << '\n';
    }
    write_file_atomic(*csv_path, csv.str());
    out << "wrote " << *csv_path << "\n";
  }
  return 0;
}

int cmd_sta(const Options& options, std::ostream& out, const ServiceEnv& env) {
  // STA reads the same elaborated arcs the simulator would evaluate;
  // --sdf analyzes the back-annotated database.
  const std::shared_ptr<const serve::Elaboration> elab =
      service_elaboration(env, options, TimingPolicy{}, /*want_sdf=*/true);
  if (const auto sdf_path = options.get("sdf")) {
    serve::print_sdf_facts(out, elab->sdf, *sdf_path);
  }
  const StaticTimingAnalyzer sta(elab->netlist, elab->graph,
                                 options.number("slew", 0.5));
  const TimingReport report = sta.analyze();
  out << StaticTimingAnalyzer::format(report, elab->netlist);
  if (options.get("per-arc")) {
    out << '\n' << elab->graph.format_arcs();
  }
  return 0;
}

int cmd_lint(const Options& options, std::ostream& out) {
  const Library& lib = default_library();
  // `--format` selects the *output* format here, so the netlist dialect
  // comes from `--netlist-format` or the file extension.
  const std::string netlist_path = options.require_flag("netlist");
  const std::string netlist_format =
      options.get("netlist-format").value_or(extension_format(netlist_path));
  const Netlist netlist = load_netlist_file(netlist_path, netlist_format, lib);
  const std::unique_ptr<DelayModel> model = make_model(options);
  const RunSupervisor supervisor = make_supervisor(options);

  // SDF annotation progress and per-pin warnings go to the console only in
  // text mode: `--format json` on stdout must stay a pure JSON document
  // (the same information is in the TIM-SDF-MISSING findings).
  std::ostringstream timing_log;
  const TimingGraph timing =
      load_timing(options, netlist, model->timing_policy(), timing_log);

  lint::LintOptions lint_options;
  lint_options.input_slew = options.number("slew", 0.5);
  lint_options.fanout_limit = static_cast<int>(options.number("fanout-limit", 64.0));
  lint_options.sdf_coverage = options.get("sdf").has_value();
  lint_options.supervisor = &supervisor;
  lint::LintReport report = lint::run_lint(netlist, timing, lint_options);

  if (const auto baseline_path = options.get("baseline")) {
    lint::apply_baseline(report, lint::parse_baseline(read_file(*baseline_path)));
  }
  if (const auto baseline_path = options.get("write-baseline")) {
    write_file_atomic(*baseline_path, lint::format_baseline(report));
  }

  const std::string format = options.get("format").value_or("text");
  require(format == "text" || format == "json", "--format must be text|json");
  const std::string rendered = format == "json" ? lint::format_json(report, netlist)
                                                : lint::format_text(report);
  if (const auto out_path = options.get("out")) {
    write_file_atomic(*out_path, rendered);
    out << timing_log.str();
    out << "wrote " << *out_path << " (" << report.findings.size() << " finding"
        << (report.findings.size() == 1 ? "" : "s") << ")\n";
  } else {
    if (format == "text") out << timing_log.str();
    out << rendered;
  }

  const std::string fail_on = options.get("fail-on").value_or("error");
  if (fail_on == "none") return 0;
  lint::Severity threshold = lint::Severity::kError;
  if (fail_on == "warn" || fail_on == "warning") threshold = lint::Severity::kWarning;
  else require(fail_on == "error", "--fail-on must be error|warn|none");
  return lint::should_fail(report, threshold) ? 1 : 0;
}

int cmd_fault(const Options& options, std::ostream& out, const ServiceEnv& env) {
  const std::unique_ptr<DelayModel> model = make_model(options);
  const std::shared_ptr<const serve::Elaboration> elab =
      service_elaboration(env, options, model->timing_policy(), /*want_sdf=*/false);
  const Netlist& netlist = elab->netlist;
  const int threads = static_cast<int>(options.number("threads", 0));
  const RunSupervisor supervisor = make_supervisor(options, env);

  if (options.get("atpg")) {
    AtpgOptions atpg;
    atpg.period = options.number("period", 5.0);
    atpg.max_candidates = static_cast<int>(options.number("candidates", 200));
    atpg.seed = usage_unsigned(options, "seed", 1);
    atpg.threads = threads;
    atpg.supervisor = &supervisor;
    const AtpgResult result = generate_tests(netlist, *model, atpg);
    out << "ATPG: " << result.words.size() << " vectors, coverage " << result.detected
        << " / " << result.total_faults << " ("
        << format_double(100.0 * result.coverage(), 4) << "%)\n";
    out << "vectors (hex, PI bit 0 = " << netlist.signal(netlist.primary_inputs()[0]).name
        << "):";
    for (const std::uint64_t word : result.words) {
      char buffer[32];
      std::snprintf(buffer, sizeof buffer, " 0x%llX",
                    static_cast<unsigned long long>(word));
      out << buffer;
    }
    out << "\n";
    if (!result.undetected.empty()) {
      out << "undetected:";
      for (const Fault& fault : result.undetected) {
        out << ' ' << fault_name(netlist, fault);
      }
      out << "\n";
    }
    return 0;
  }

  const Stimulus stimulus = load_stimulus(env, options, netlist);
  require(stimulus.last_edge_time() > 0.0, "fault simulation needs a --stim file");

  if (options.get("serial")) {
    // Legacy engine: per-fault netlist rewiring, full-stimulus replay.
    FaultSimOptions fs_options;
    fs_options.sample_period = options.number("period", 5.0);
    const FaultSimResult result =
        run_fault_simulation(netlist, stimulus, *model, {}, fs_options);
    out << "stuck-at coverage: " << result.detected << " / " << result.total << " ("
        << format_double(100.0 * result.coverage(), 4) << "%) under " << model->name()
        << " [serial engine]\n";
    if (!result.undetected.empty()) {
      out << "undetected:";
      for (const Fault& fault : result.undetected) {
        out << ' ' << fault_name(netlist, fault);
      }
      out << "\n";
    }
    return 0;
  }

  FaultSimOptions sampling;
  sampling.sample_period = options.number("period", 5.0);
  const bool early_exit = !options.get("no-early-exit");
  const auto start = std::chrono::steady_clock::now();
  // The engine runs on the shared elaboration's graph (the daemon's cached
  // one on a warm hit) instead of re-elaborating; verdicts are
  // bit-identical either way.
  CampaignEngine engine(netlist, *model, elab->graph, threads);
  engine.supervise(&supervisor);
  const CampaignResult result = engine.run(stimulus, {}, sampling, early_exit);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  out << "stuck-at coverage: " << result.detected << " / " << result.total << " ("
      << format_double(100.0 * result.coverage(), 4) << "%) under " << model->name()
      << "\n";
  out << "campaign: " << result.threads_used << " thread"
      << (result.threads_used == 1 ? "" : "s") << ", "
      << result.events_processed << " events, "
      << format_double(wall_s, 4) << " s ("
      << format_double(wall_s > 0.0 ? static_cast<double>(result.total) / wall_s : 0.0, 5)
      << " faults/sec)\n";
  if (result.errors > 0) {
    out << "errors: " << result.errors << " faulty run"
        << (result.errors == 1 ? "" : "s") << " failed";
    if (result.retried > 0) out << " (" << result.retried << " retried)";
    out << "; first: " << result.first_error << "\n";
  } else if (result.retried > 0) {
    out << "retried: " << result.retried << " faulty run"
        << (result.retried == 1 ? "" : "s") << " after a transient failure\n";
  }
  if (!result.undetected.empty()) {
    out << "undetected:";
    for (const Fault& fault : result.undetected) {
      out << ' ' << fault_name(netlist, fault);
    }
    out << "\n";
  }
  return result.errors > 0 ? 1 : 0;
}

int cmd_repro(const Options& options, std::ostream& out) {
  const repro::ExperimentRegistry registry = repro::ExperimentRegistry::builtin();

  if (options.get("list")) {
    out << "registered experiments:\n";
    for (const repro::Experiment& experiment : registry.experiments()) {
      char line[256];
      std::snprintf(line, sizeof line, "  %-24s %-42s %s\n", experiment.id.c_str(),
                    ("[paper " + experiment.paper_ref + "]").c_str(),
                    experiment.description.c_str());
      out << line;
    }
    return 0;
  }

  repro::RunOptions run_options;
  run_options.quick = options.get("quick").has_value();
  run_options.threads = static_cast<int>(options.number("threads", 0));
  if (const auto only = options.get("only")) {
    for (const std::string& id : split(*only, ',')) {
      if (!id.empty()) run_options.only.push_back(id);
    }
    require(!run_options.only.empty(), "--only needs at least one experiment id");
  }
  if (const auto golden = options.get("golden")) {
    run_options.golden_text = read_file(*golden);
  }
  const RunSupervisor supervisor = make_supervisor(options);
  run_options.supervisor = &supervisor;

  const auto start = std::chrono::steady_clock::now();
  const repro::RunReport report = repro::run_experiments(registry, run_options);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  // Write the artifact tree: <out>/<experiment>/<artifact>, plus the report
  // and the flat hash listing (HASHES.txt is byte-compatible with the
  // committed golden file).  All crash-safe: temp file + atomic rename, so
  // an aborted run never leaves a torn artifact behind.
  const std::filesystem::path out_dir{options.get("out").value_or("repro-out")};
  std::filesystem::create_directories(out_dir);
  for (const repro::ExperimentOutcome& outcome : report.outcomes) {
    std::filesystem::create_directories(out_dir / outcome.id);
    for (const repro::Artifact& artifact : outcome.result.artifacts) {
      write_file_atomic(out_dir / outcome.id / artifact.name, artifact.content);
    }
  }
  write_file_atomic(out_dir / "REPORT.md", repro::format_report_markdown(report));
  // The header makes HASHES.txt self-describing, so blessing new goldens is
  // exactly `cp HASHES.txt tests/repro/golden_quick.txt` (comments survive
  // the copy; parse_goldens skips them).
  const std::string hashes_header =
      std::string("# HALOTIS repro artifact hashes (") +
      (run_options.quick ? "quick" : "full") +
      " mode); format: <experiment> <artifact> <fnv1a64>.\n"
      "# Bless as goldens (quick mode only): cp HASHES.txt "
      "tests/repro/golden_quick.txt -- see docs/REPRODUCTION.md.\n";
  write_file_atomic(out_dir / "HASHES.txt",
                    hashes_header + repro::format_goldens(report.hashes()));

  // Console summary (wall time and verdicts stay out of the artifacts).
  for (const repro::ExperimentOutcome& outcome : report.outcomes) {
    char line[256];
    std::snprintf(line, sizeof line, "  %-24s %-38s %s\n", outcome.id.c_str(),
                  ("[paper " + outcome.paper_ref + "]").c_str(),
                  !outcome.error.empty() ? "ERROR"
                  : outcome.failed()     ? "GOLDEN MISMATCH"
                                         : "ok");
    out << line;
    if (!outcome.error.empty()) out << "    " << outcome.error << "\n";
  }
  out << "wrote " << (out_dir / "REPORT.md").string() << " ("
      << report.outcomes.size() << " experiments, " << report.artifacts_total
      << " artifacts, " << format_double(wall_s, 4) << " s)\n";
  if (report.compared_goldens) {
    out << "golden hashes: " << report.golden_matches << "/" << report.artifacts_total
        << " match";
    if (report.golden_mismatches > 0) {
      out << ", " << report.golden_mismatches << " MISMATCH";
    }
    if (report.golden_missing > 0) out << ", " << report.golden_missing << " without golden";
    if (!report.stale_goldens.empty()) {
      out << ", " << report.stale_goldens.size() << " stale";
    }
    out << "\n";
  }
  return report.ok() ? 0 : 1;
}

int cmd_convert(const Options& options, std::ostream& out) {
  const Netlist netlist = load_netlist(options, default_library());
  const std::string to = options.require_flag("to");
  std::string text;
  if (to == "bench") {
    text = write_bench(netlist);
  } else if (to == "verilog") {
    text = write_verilog(netlist);
  } else if (to == "native") {
    text = write_netlist(netlist);
  } else if (to == "sdf") {
    text = write_sdf(netlist, options.number("slew", 0.5));
  } else {
    require(false, "unknown target format '" + to + "'");
  }
  if (const auto path = options.get("out")) {
    write_file_atomic(*path, text);
    out << "wrote " << *path << "\n";
  } else {
    out << text;
  }
  return 0;
}

/// `halotis serve`: the resident daemon (docs/DAEMON.md).  Binds the Unix
/// socket, parks the worker pool in accept loops, and blocks until SIGINT
/// or SIGTERM trips the process token -- then drains, unlinks the socket
/// and reports what it served.
int cmd_serve(const Options& options, std::ostream& out) {
  serve::ServeOptions serve_options;
  serve_options.socket_path = options.require_flag("socket");
  const int threads = static_cast<int>(options.number("threads", 0.0));
  require(threads >= 0, "--threads must be >= 0 (0 = all hardware threads)");
  serve_options.threads = threads;
  const double cache_mb = options.number("cache-mb", 256.0);
  require(cache_mb > 0.0, "--cache-mb must be > 0");
  serve_options.cache_bytes = static_cast<std::size_t>(cache_mb * 1024.0 * 1024.0);
  serve_options.idle_timeout_ms =
      static_cast<int>(options.number("idle-timeout-ms", 30000.0));
  serve_options.stop = cli_cancel_token();
  // SIGTERM drains exactly like Ctrl-C: systemd stop / CI teardown get a
  // clean socket unlink and only whole artifacts.
  install_sigterm_cancel(cli_cancel_token());

  serve::Server server(
      serve_options,
      [](const std::vector<std::string>& request_args, serve::ServeContext& context,
         serve::RequestIo& io, std::ostream& request_out, std::ostream& request_err) {
        return run_cli_service(request_args, request_out, request_err, &context, &io);
      });
  out << "serving on " << serve_options.socket_path << " (" << server.threads()
      << " worker" << (server.threads() == 1 ? "" : "s") << ", cache "
      << serve_options.cache_bytes / (1024 * 1024) << " MiB)\n";
  out.flush();
  server.run();

  const serve::Server::Stats stats = server.stats();
  const serve::ElabCache::Stats cache = server.cache_stats();
  out << "drained: " << stats.requests << " request" << (stats.requests == 1 ? "" : "s")
      << " over " << stats.connections << " connection"
      << (stats.connections == 1 ? "" : "s") << ", cache " << cache.hits << " hit"
      << (cache.hits == 1 ? "" : "s") << " / " << cache.misses << " miss"
      << (cache.misses == 1 ? "" : "es") << ", " << stats.protocol_errors
      << " protocol error" << (stats.protocol_errors == 1 ? "" : "s") << ", "
      << stats.aborted_connections << " aborted connection"
      << (stats.aborted_connections == 1 ? "" : "s") << "\n";
  return 0;
}

/// `--connect PATH` interception (local mode): ship the command's argv and
/// input files to a resident daemon, write the returned artifacts
/// atomically on this side, relay the captured console bytes -- a
/// successful exchange is byte-identical to running the command locally.
int run_connect(const Options& options, const std::vector<std::string>& args,
                std::ostream& out, std::ostream& err) {
  const bool routable = options.command == "sim" || options.command == "sta" ||
                        options.command == "fault" || options.command == "variation";
  if (!routable) {
    throw UsageError("--connect routes sim, sta, fault and variation only (got '" +
                     options.command + "')");
  }
  const std::string socket_path = *options.get("connect");
  std::vector<std::pair<std::string, std::string>> files;
  const auto ship = [&files](const std::string& path) {
    files.emplace_back(path, read_file(path));
  };
  if (const auto path = options.get("netlist")) ship(*path);
  if (const auto path = options.get("stim")) ship(*path);
  if (const auto path = options.get("sdf")) {
    if (options.command == "sim" && options.get("replay")) {
      // Replay corners: --sdf lists several files, comma-separated.
      for (const std::string& corner : split(*path, ',')) {
        if (!corner.empty()) ship(corner);
      }
    } else {
      ship(*path);
    }
  }
  // Forward everything but the flags consumed on this side: --connect
  // itself, and --failpoints (already armed in this process so the io.*
  // sites fire on the client-side artifact writes; the daemon rejects a
  // forwarded copy).
  std::vector<std::string> forwarded;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--connect" || args[i] == "--failpoints") {
      if (i + 1 < args.size() && !starts_with(args[i + 1], "--")) ++i;
      continue;
    }
    forwarded.push_back(args[i]);
  }
  return serve::run_connected(socket_path, forwarded, files, out, err,
                              &cli_cancel_token());
}

}  // namespace

const CancelToken& cli_cancel_token() {
  static const CancelToken token;
  return token;
}

std::string cli_usage() {
  return R"(halotis -- high-accuracy logic timing simulator (IDDM)

usage: halotis <command> [flags]

commands:
  sim      event-driven timing simulation
           --netlist F [--format bench|verilog|native] [--stim F]
           [--model ddm|cdm|cdm-classical|transport] [--t-end NS]
           [--sdf F] [--vcd F] [--report] [--waves] [--hash]
           [--threads N] [--partitions K]   (partitioned parallel kernel;
           N=0 uses all hardware threads, results are bit-identical at
           every N; --report/--vcd need --threads 1)
           --sdf A[,B...] --replay   record the causal trace once, re-time
           each SDF corner through the replayer (docs/REPLAY.md)
  variation  Monte-Carlo per-gate delay variation (docs/REPLAY.md)
           --netlist F [--stim F] [--model M] [--sigma S] [--samples N]
           [--seed N] [--threads N] [--replay] [--csv F] [--out F]
           --replay re-times a recorded trace per sample; CSV/report
           artifacts are byte-identical with or without it, at any N
  analog   transistor-level reference simulation
           --netlist F [--stim F] [--t-end NS] [--csv F]
  sta      static timing analysis (conventional worst case)
           --netlist F [--slew NS] [--sdf F] [--per-arc]
  lint     static structural / hazard / timing analysis (docs/LINT.md)
           --netlist F (or: halotis lint F)
           [--netlist-format bench|verilog|native] [--format text|json]
           [--sdf F] [--slew NS] [--fanout-limit N] [--out F]
           [--baseline F] [--write-baseline F] [--fail-on error|warn|none]
           exit 1 when findings at/above --fail-on survive the baseline
  fault    parallel stuck-at fault campaign / test generation
           --netlist F --stim F [--model M] [--period NS]
           [--threads N] [--serial] [--no-early-exit]
           --netlist F --atpg [--candidates N] [--seed N] [--threads N]
  repro    paper-reproduction experiment engine (docs/REPRODUCTION.md)
           [--list] [--only ID[,ID...]] [--quick] [--out DIR]
           [--threads N] [--golden F]
  convert  netlist format conversion / delay annotation export
           --netlist F --to bench|verilog|native|sdf [--slew NS] [--out F]
  serve    resident simulation daemon (docs/DAEMON.md)
           --socket PATH [--threads N] [--cache-mb M] (default 256)
           keeps a keyed LRU cache of elaborated designs and a pooled
           simulator per worker; SIGINT/SIGTERM drain gracefully
           sim, sta, fault and variation accept --connect PATH to route
           the request through a running daemon -- console output and
           artifacts are byte-identical to running locally

supervision (sim, variation, fault, repro, lint -- docs/ARCHITECTURE.md):
  --budget-events N    error out (exit 3) after N processed events
  --budget-mem-mb N    error out (exit 3) past N MiB of kernel arenas
  --deadline-s S       error out (exit 4) after S wall-clock seconds
  --failpoints SPEC    arm fail points, e.g. "io.write@2;worker.task*"
                       (also read from $HALOTIS_FAILPOINTS); any command
  Ctrl-C cancels cooperatively (exit 5); artifacts are written via temp
  file + atomic rename, so no partial file survives any failure.

exit codes: 0 ok, 1 error, 2 usage, 3 budget, 4 deadline, 5 cancelled, 6 I/O
)";
}

int run_cli(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  return run_cli_service(args, out, err, nullptr, nullptr);
}

int run_cli_service(const std::vector<std::string>& args, std::ostream& out,
                    std::ostream& err, serve::ServeContext* context,
                    serve::RequestIo* io) {
  const ServiceEnv env{context, io};
  // Fail-point arming is scoped to this invocation: sites armed from the
  // environment or --failpoints are disarmed on every exit path so repeated
  // in-process calls (tests) stay isolated.  Sites armed through the test
  // API before the call are intentionally cleared too -- arm per call.
  // Daemon-side requests never touch the registry: the sites stay whatever
  // the daemon process armed (per-request arming would race across
  // workers).
  bool armed_failpoints = false;
  struct DisarmGuard {
    bool* armed;
    ~DisarmGuard() {
      if (*armed) FailPoints::instance().disarm_all();
    }
  } disarm_guard{&armed_failpoints};
  try {
    if (args.empty() || args[0] == "help" || args[0] == "--help") {
      out << cli_usage();
      return args.empty() ? 2 : 0;
    }
    // `halotis lint <netlist>` convenience form: a bare first operand is
    // the netlist path (the documented house style stays --netlist).
    std::vector<std::string> expanded = args;
    if (expanded.size() >= 2 && expanded[0] == "lint" && !starts_with(expanded[1], "--")) {
      expanded.insert(expanded.begin() + 1, "--netlist");
    }
    const Options options = parse_args(expanded);
    if (env.daemon()) {
      // The daemon serves the four commands whose inputs ship in the
      // request frame and whose elaborations cache; everything else -- and
      // anything process-global -- is a usage error back to the client.
      const bool routable = options.command == "sim" || options.command == "sta" ||
                            options.command == "fault" ||
                            options.command == "variation";
      if (!routable) {
        throw UsageError("daemon serves sim, sta, fault and variation (got '" +
                         options.command + "')");
      }
      if (options.get("connect")) {
        throw UsageError("--connect cannot be forwarded through a daemon");
      }
      if (options.get("failpoints")) {
        throw UsageError("--failpoints is process-wide; arm it on the daemon itself");
      }
    } else {
      std::string failpoint_spec;
      if (const char* env_spec = std::getenv("HALOTIS_FAILPOINTS")) {
        failpoint_spec = env_spec;
      }
      if (const auto flag = options.get("failpoints")) failpoint_spec = *flag;
      if (!failpoint_spec.empty()) {
        FailPoints::instance().arm_spec(failpoint_spec);
        armed_failpoints = true;
      }
      if (options.get("connect")) return run_connect(options, expanded, out, err);
    }
    if (options.command == "sim") return cmd_sim(options, out, env);
    if (options.command == "variation") return cmd_variation(options, out, env);
    if (options.command == "analog") return cmd_analog(options, out);
    if (options.command == "sta") return cmd_sta(options, out, env);
    if (options.command == "lint") return cmd_lint(options, out);
    if (options.command == "fault") return cmd_fault(options, out, env);
    if (options.command == "repro") return cmd_repro(options, out);
    if (options.command == "convert") return cmd_convert(options, out);
    if (options.command == "serve") return cmd_serve(options, out);
    err << "unknown command '" << options.command << "'\n" << cli_usage();
    return 2;
  } catch (const UsageError& e) {
    err << "usage error: " << e.what() << "\n" << cli_usage();
    return 2;
  } catch (const RunError& e) {
    // The structured taxonomy maps onto documented exit codes (README.md):
    // 3 budget, 4 deadline, 5 cancelled, 6 I/O, 1 contract violation.
    err << "error (" << RunError::kind_name(e.kind()) << "): " << e.what() << "\n";
    return e.exit_code();
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace halotis
