// Switching activity and power estimation (the paper's Table 1 metric and
// its section-1 motivation: "truly power consumption due to glitches").
//
// Dynamic energy per transition on a node of capacitance C is C*VDD^2/2;
// glitch energy is the share attributable to pulses narrower than a
// configurable width (which conventional models over- or under-count,
// refs [6, 7] of the paper).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/base/units.hpp"
#include "src/core/simulator.hpp"

namespace halotis {

struct SignalActivity {
  SignalId signal;
  std::string name;
  std::size_t transitions = 0;
  std::size_t glitch_transitions = 0;  ///< edges belonging to narrow pulses
  Farad load = 0.0;
  double energy_pj = 0.0;              ///< C * VDD^2 / 2 per transition
};

struct ActivityReport {
  std::vector<SignalActivity> per_signal;
  std::uint64_t total_transitions = 0;
  std::uint64_t total_glitch_transitions = 0;
  double total_energy_pj = 0.0;
  double glitch_energy_pj = 0.0;
  TimeNs window = 0.0;  ///< observation window used for power

  /// Average dynamic power over the window, mW (pJ / ns).
  [[nodiscard]] double average_power_mw() const {
    return window > 0.0 ? total_energy_pj / window : 0.0;
  }
  [[nodiscard]] double glitch_fraction() const {
    return total_transitions > 0
               ? static_cast<double>(total_glitch_transitions) /
                     static_cast<double>(total_transitions)
               : 0.0;
  }
};

/// Builds the report from a finished simulation.  `glitch_width` classifies
/// pulses (pairs of consecutive edges closer than this) as glitches.
[[nodiscard]] ActivityReport compute_activity(const Simulator& sim,
                                              TimeNs glitch_width = 1.0);

/// Formats the report as an aligned table (top `max_rows` signals by
/// energy; 0 = all).
[[nodiscard]] std::string format_activity(const ActivityReport& report,
                                          std::size_t max_rows = 0);

/// Distribution of surviving pulse widths across all signals: counts[i] is
/// the number of pulses whose width falls in [bin_edges[i-1], bin_edges[i]),
/// with bin 0 covering [0, bin_edges[0]) and a final overflow bin for
/// >= bin_edges.back().  A pulse is an excursion from the signal's resting
/// value -- transition pairs (0,1), (2,3), ... of each history; the
/// quiescent gaps between pulses are not counted.  `bin_edges` must be
/// strictly increasing.  The glitch spectrum behind the paper's Table 1:
/// the DDM shifts mass out of the narrow bins that the conventional model
/// either keeps (transport) or over-filters (classical inertial).
[[nodiscard]] std::vector<std::uint64_t> pulse_width_histogram(
    const Simulator& sim, std::span<const TimeNs> bin_edges);

}  // namespace halotis
