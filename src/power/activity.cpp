#include "src/power/activity.hpp"

#include <algorithm>
#include <sstream>

#include "src/base/check.hpp"

namespace halotis {

ActivityReport compute_activity(const Simulator& sim, TimeNs glitch_width) {
  const Netlist& netlist = sim.netlist();
  const Volt vdd = netlist.library().vdd();
  ActivityReport report;
  report.window = sim.now();

  for (std::size_t s = 0; s < netlist.num_signals(); ++s) {
    const SignalId sid{static_cast<SignalId::underlying_type>(s)};
    const auto history = sim.history(sid);
    SignalActivity activity;
    activity.signal = sid;
    activity.name = netlist.signal(sid).name;
    activity.transitions = history.size();
    activity.load = netlist.load_of(sid);
    activity.energy_pj =
        0.5 * activity.load * vdd * vdd * static_cast<double>(history.size());
    for (std::size_t i = 1; i < history.size(); ++i) {
      if (history[i].t50() - history[i - 1].t50() < glitch_width) {
        activity.glitch_transitions += 2;  // both edges of the narrow pulse
        if (i >= 2 &&
            history[i - 1].t50() - history[i - 2].t50() < glitch_width) {
          --activity.glitch_transitions;  // shared edge counted once
        }
      }
    }
    activity.glitch_transitions =
        std::min(activity.glitch_transitions, activity.transitions);

    report.total_transitions += activity.transitions;
    report.total_glitch_transitions += activity.glitch_transitions;
    report.total_energy_pj += activity.energy_pj;
    if (activity.transitions > 0) {
      report.glitch_energy_pj += 0.5 * activity.load * vdd * vdd *
                                 static_cast<double>(activity.glitch_transitions);
    }
    report.per_signal.push_back(std::move(activity));
  }
  return report;
}

std::vector<std::uint64_t> pulse_width_histogram(const Simulator& sim,
                                                 std::span<const TimeNs> bin_edges) {
  require(!bin_edges.empty(), "pulse_width_histogram(): bin_edges must not be empty");
  for (std::size_t i = 1; i < bin_edges.size(); ++i) {
    require(bin_edges[i] > bin_edges[i - 1],
            "pulse_width_histogram(): bin_edges must be strictly increasing");
  }
  std::vector<std::uint64_t> counts(bin_edges.size() + 1, 0);
  const Netlist& netlist = sim.netlist();
  for (std::size_t s = 0; s < netlist.num_signals(); ++s) {
    const SignalId sid{static_cast<SignalId::underlying_type>(s)};
    const auto history = sim.history(sid);
    // A pulse is an excursion from the signal's resting value: edge 0
    // leaves it, edge 1 returns, so pairs (0,1), (2,3), ... are pulses and
    // the odd->even intervals are quiescent gaps (counting those would
    // drown the wide bins in inter-vector idle time).
    for (std::size_t i = 1; i < history.size(); i += 2) {
      const TimeNs width = history[i].t50() - history[i - 1].t50();
      const auto it = std::upper_bound(bin_edges.begin(), bin_edges.end(), width);
      ++counts[static_cast<std::size_t>(it - bin_edges.begin())];
    }
  }
  return counts;
}

std::string format_activity(const ActivityReport& report, std::size_t max_rows) {
  std::vector<const SignalActivity*> rows;
  rows.reserve(report.per_signal.size());
  for (const SignalActivity& a : report.per_signal) {
    if (a.transitions > 0) rows.push_back(&a);
  }
  std::sort(rows.begin(), rows.end(), [](const SignalActivity* a, const SignalActivity* b) {
    return a->energy_pj > b->energy_pj;
  });
  if (max_rows > 0 && rows.size() > max_rows) rows.resize(max_rows);

  std::ostringstream out;
  out << "signal                 toggles  glitch  load(pF)  energy(pJ)\n";
  for (const SignalActivity* a : rows) {
    char line[128];
    std::snprintf(line, sizeof line, "%-22s %7zu %7zu %9.4f %11.4f\n", a->name.c_str(),
                  a->transitions, a->glitch_transitions, a->load, a->energy_pj);
    out << line;
  }
  char total[160];
  std::snprintf(total, sizeof total,
                "TOTAL: %llu transitions (%llu glitch, %.1f%%), %.3f pJ, %.4f mW over "
                "%.2f ns\n",
                static_cast<unsigned long long>(report.total_transitions),
                static_cast<unsigned long long>(report.total_glitch_transitions),
                100.0 * report.glitch_fraction(), report.total_energy_pj,
                report.average_power_mw(), report.window);
  out << total;
  return out.str();
}

}  // namespace halotis
