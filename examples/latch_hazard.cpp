// Glitches and state: the paper's introduction motivates accurate glitch
// handling partly by the risk of spuriously triggering latches.  Here a
// hazard pulse from a reconvergent path reaches the set input of a NAND
// latch.  Under the conventional model the (fully propagated) glitch sets
// the latch -- a functional failure; under the IDDM the degraded pulse
// never reaches the latch threshold, matching the electrical reference.
#include <array>
#include <cstdio>
#include <iostream>

#include "src/analog/analog_sim.hpp"
#include "src/circuits/generators.hpp"
#include "src/core/simulator.hpp"
#include "src/waveform/ascii_plot.hpp"

using namespace halotis;

namespace {

struct HazardCircuit {
  Netlist netlist;
  SignalId trigger, reset_n, set_n, q;

  explicit HazardCircuit(const Library& lib) : netlist(lib) {
    // Hazard generator: set_n = NAND(trigger, delayed(trigger)); a rising
    // trigger makes a 0-glitch on set_n while the inverter chain catches up.
    trigger = netlist.add_primary_input("trigger");
    reset_n = netlist.add_primary_input("reset_n");
    SignalId delayed = trigger;
    for (int i = 0; i < 3; ++i) {
      const SignalId next = netlist.add_signal("d" + std::to_string(i));
      const std::array<SignalId, 1> ins{delayed};
      (void)netlist.add_gate("inv" + std::to_string(i), CellKind::kInv, ins, next);
      delayed = next;
    }
    // Odd chain: delayed is the complement; NAND(trigger, not_trigger_yet)
    // glitches low when trigger rises (both high for ~3 gate delays).
    set_n = netlist.add_signal("set_n");
    const std::array<SignalId, 2> nand_in{trigger, delayed};
    (void)netlist.add_gate("g_haz", CellKind::kNand2, nand_in, set_n);
    netlist.set_wire_cap(set_n, 0.12);  // loaded net: slow, degradable edge

    // The latch.
    q = netlist.add_signal("q");
    const SignalId qn = netlist.add_signal("qn");
    const std::array<SignalId, 2> gq_in{set_n, qn};
    (void)netlist.add_gate("g_q", CellKind::kNand2, gq_in, q);
    const std::array<SignalId, 2> gqn_in{reset_n, q};
    (void)netlist.add_gate("g_qn", CellKind::kNand2, gqn_in, qn);
    netlist.mark_primary_output(q);
  }
};

Stimulus make_stim(const HazardCircuit& hc) {
  Stimulus stim(0.4);
  // Reset pulse first, then release; trigger rises later.
  stim.set_initial(hc.reset_n, false);
  stim.set_initial(hc.trigger, false);
  stim.add_edge(hc.reset_n, 3.0, true);
  stim.add_edge(hc.trigger, 8.0, true);
  return stim;
}

}  // namespace

int main() {
  const Library lib = Library::default_u6();

  const DdmDelayModel ddm;
  const CdmDelayModel cdm;
  struct Row {
    const char* name;
    bool q_final;
    std::size_t set_n_edges;
  };
  Row rows[3];

  {
    HazardCircuit hc(lib);
    Simulator sim(hc.netlist, ddm);
    sim.apply_stimulus(make_stim(hc));
    (void)sim.run();
    rows[0] = {"HALOTIS-DDM", sim.final_value(hc.q), sim.history(hc.set_n).size()};

    AsciiPlot plot(0.0, 14.0, 90);
    plot.add_caption("HALOTIS-DDM: the set_n glitch degrades away; q stays 0");
    for (const SignalId sig : {hc.trigger, hc.set_n, hc.q}) {
      plot.add_digital(hc.netlist.signal(sig).name,
                       DigitalWaveform::from_transitions(sim.initial_value(sig),
                                                         sim.history(sig)));
    }
    std::cout << plot.render() << '\n';
  }
  {
    HazardCircuit hc(lib);
    Simulator sim(hc.netlist, cdm);
    sim.apply_stimulus(make_stim(hc));
    (void)sim.run();
    rows[1] = {"HALOTIS-CDM", sim.final_value(hc.q), sim.history(hc.set_n).size()};

    AsciiPlot plot(0.0, 14.0, 90);
    plot.add_caption("HALOTIS-CDM: the full-width glitch reaches the latch");
    for (const SignalId sig : {hc.trigger, hc.set_n, hc.q}) {
      plot.add_digital(hc.netlist.signal(sig).name,
                       DigitalWaveform::from_transitions(sim.initial_value(sig),
                                                         sim.history(sig)));
    }
    std::cout << plot.render() << '\n';
  }
  {
    HazardCircuit hc(lib);
    AnalogSim sim(hc.netlist);
    sim.apply_stimulus(make_stim(hc));
    sim.run(14.0);
    rows[2] = {"analog ref", sim.voltage(hc.q) > 0.5 * lib.vdd(),
               sim.trace(hc.set_n).digitize(lib.vdd()).edge_count()};
  }

  std::printf("%-14s %-18s %s\n", "engine", "set_n glitch edges", "latch q (final)");
  for (const Row& row : rows) {
    std::printf("%-14s %-18zu %d\n", row.name, row.set_n_edges, row.q_final ? 1 : 0);
  }
  std::printf("\nThe conventional model predicts a spuriously set latch; the IDDM\n"
              "agrees with the electrical reference that the glitch is harmless.\n");
  return 0;
}
