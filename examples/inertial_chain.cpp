// The paper's Fig. 1 experiment as a runnable demo: a degraded runt pulse
// on a shared net drives a low-threshold and a high-threshold inverter
// chain.  The electrical reference and HALOTIS-DDM agree that the pulse
// propagates through one chain only; the conventional inertial model
// structurally cannot express that.
#include <cstdio>
#include <iostream>

#include "src/analog/analog_sim.hpp"
#include "src/circuits/generators.hpp"
#include "src/core/simulator.hpp"
#include "src/waveform/ascii_plot.hpp"

using namespace halotis;

namespace {

Stimulus pulse_stimulus(const Fig1Circuit& fx, double width) {
  Stimulus stim(0.5);
  stim.set_initial(fx.in, true);
  stim.add_edge(fx.in, 5.0, false);
  stim.add_edge(fx.in, 5.0 + width, true);
  return stim;
}

}  // namespace

int main() {
  const Library lib = Library::default_u6();
  const double width = 0.9;  // inside the discrimination window

  Fig1Circuit fx = make_fig1(lib);
  const SignalId signals[] = {fx.in, fx.out0, fx.out1, fx.out1c, fx.out2, fx.out2c};

  // Electrical reference.
  AnalogSim analog(fx.netlist);
  analog.apply_stimulus(pulse_stimulus(fx, width));
  analog.run(16.0);

  // HALOTIS with both models.
  const DdmDelayModel ddm;
  Simulator ddm_sim(fx.netlist, ddm);
  ddm_sim.apply_stimulus(pulse_stimulus(fx, width));
  (void)ddm_sim.run();

  const CdmDelayModel cdm;
  Simulator cdm_sim(fx.netlist, cdm);
  cdm_sim.apply_stimulus(pulse_stimulus(fx, width));
  (void)cdm_sim.run();

  std::printf("Fig. 1 experiment: %.2f ns falling pulse into the driver chain\n\n", width);

  AsciiPlot analog_plot(3.0, 13.0, 90);
  analog_plot.add_caption("(a) electrical reference (HSPICE stand-in), quantized voltages");
  for (const SignalId sig : signals) {
    analog_plot.add_analog(fx.netlist.signal(sig).name, analog.trace(sig), lib.vdd());
  }
  std::cout << analog_plot.render() << '\n';

  const auto digital_plot = [&](const Simulator& sim, const char* title) {
    AsciiPlot plot(3.0, 13.0, 90);
    plot.add_caption(title);
    for (const SignalId sig : signals) {
      plot.add_digital(fx.netlist.signal(sig).name,
                       DigitalWaveform::from_transitions(sim.initial_value(sig),
                                                         sim.history(sig)));
    }
    std::cout << plot.render() << '\n';
  };
  digital_plot(ddm_sim, "(b) HALOTIS-DDM: per-input thresholds discriminate");
  digital_plot(cdm_sim, "(c) HALOTIS-CDM: conventional model propagates to both chains");

  std::printf("edge counts      analog  DDM  CDM\n");
  for (const SignalId sig : signals) {
    std::printf("  %-8s %10zu %4zu %4zu\n", fx.netlist.signal(sig).name.c_str(),
                analog.trace(sig).digitize(lib.vdd()).edge_count(),
                ddm_sim.history(sig).size(), cdm_sim.history(sig).size());
  }
  std::printf("\nDDM pair-rule cancellations: %llu (the pulse judged invisible at the"
              " high-VT input)\n",
              static_cast<unsigned long long>(ddm_sim.stats().pair_cancellations));
  return 0;
}
