// Loading an ISCAS-85 netlist (.bench) and estimating switching activity
// and glitch power under random vectors, DDM vs CDM.
#include <cstdio>

#include "src/base/rng.hpp"
#include "src/core/simulator.hpp"
#include "src/parsers/bench_format.hpp"
#include "src/power/activity.hpp"

using namespace halotis;

namespace {

Stimulus random_vectors(const Netlist& netlist, int vectors, TimeNs period,
                        std::uint64_t seed) {
  SplitMix64 rng(seed);
  Stimulus stim(0.5);
  std::vector<bool> value(netlist.primary_inputs().size());
  for (std::size_t i = 0; i < value.size(); ++i) {
    value[i] = rng.next_bool();
    stim.set_initial(netlist.primary_inputs()[i], value[i]);
  }
  for (int v = 1; v <= vectors; ++v) {
    const TimeNs t = period * static_cast<double>(v);
    for (std::size_t i = 0; i < value.size(); ++i) {
      if (rng.next_bool()) {
        value[i] = !value[i];
        stim.add_edge(netlist.primary_inputs()[i], t, value[i]);
      }
    }
  }
  return stim;
}

}  // namespace

int main(int argc, char** argv) {
  const Library lib = Library::default_u6();
  // Default: the embedded c17; pass a path to load any .bench file.
  const Netlist netlist = argc > 1 ? read_bench_file(argv[1], lib)
                                   : read_bench(c17_bench_text(), lib);
  std::printf("netlist: %zu gates, %zu signals, depth %d, %zu inputs, %zu outputs\n\n",
              netlist.num_gates(), netlist.num_signals(), netlist.depth(),
              netlist.primary_inputs().size(), netlist.primary_outputs().size());

  const int kVectors = 64;
  const TimeNs kPeriod = 5.0;

  const DdmDelayModel ddm;
  const CdmDelayModel cdm;
  const DelayModel* models[] = {&ddm, &cdm};
  ActivityReport reports[2];
  for (int m = 0; m < 2; ++m) {
    Simulator sim(netlist, *models[m]);
    sim.apply_stimulus(random_vectors(netlist, kVectors, kPeriod, 12345));
    (void)sim.run();
    reports[m] = compute_activity(sim, /*glitch_width=*/1.0);
    std::printf("== %s ==\n", models[m]->name().data());
    std::printf("  events processed: %llu, filtered: %llu\n",
                static_cast<unsigned long long>(sim.stats().events_processed),
                static_cast<unsigned long long>(sim.stats().filtered_events()));
    std::printf("%s\n", format_activity(reports[m], 10).c_str());
  }

  std::printf("CDM / DDM activity ratio: %.2f\n",
              static_cast<double>(reports[1].total_transitions) /
                  static_cast<double>(std::max<std::uint64_t>(1, reports[0].total_transitions)));
  return 0;
}
