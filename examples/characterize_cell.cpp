// Characterizing a cell against the electrical reference: the flow the
// paper's authors ran against HSPICE to obtain the DDM parameters
// (refs [15]-[17]).  Prints the fitted tp0 macro-model, the degradation
// curve with its eq. 1 fit, the eq. 2 / eq. 3 coefficients and the DC
// switching threshold.
#include <cstdio>
#include <string>

#include "src/characterize/characterize.hpp"

using namespace halotis;

int main(int argc, char** argv) {
  const Library lib = Library::default_u6();
  const std::string cell_name = argc > 1 ? argv[1] : "NAND2_X1";
  const int pin = argc > 2 ? std::atoi(argv[2]) : 0;
  const Cell& cell = lib.cell(lib.find(cell_name));

  std::printf("characterizing %s pin %d against the analog reference\n\n",
              cell_name.c_str(), pin);

  // DC switching threshold.
  const Volt vm = measure_vm(lib, cell_name, pin);
  std::printf("DC threshold VM = %.3f V (library VT = %.3f V)\n\n", vm,
              cell.pin(pin).vt);

  // tp0 macro-model over a load x slew grid.
  const std::vector<Farad> loads{0.02, 0.06, 0.12};
  const std::vector<TimeNs> slews{0.2, 0.5, 1.0};
  for (const Edge in_edge : {Edge::kRise, Edge::kFall}) {
    const MacroModelFit fit = fit_tp0(lib, cell_name, pin, in_edge, loads, slews);
    const DelayMeasurement probe = measure_delay(lib, cell_name, pin, in_edge, 0.06, 0.5);
    const EdgeTiming& lib_edge = cell.pin(pin).edge(probe.out_edge);
    std::printf("input %s -> output %s:\n", in_edge == Edge::kRise ? "rise" : "fall",
                probe.out_edge == Edge::kRise ? "rise" : "fall");
    std::printf("  fitted  tp0 = %.4f + %.3f*CL + %.4f*tau_in   (R^2 = %.4f)\n", fit.p0,
                fit.p_load, fit.p_slew, fit.r_squared);
    std::printf("  library tp0 = %.4f + %.3f*CL + %.4f*tau_in\n\n", lib_edge.p0,
                lib_edge.p_load, lib_edge.p_slew);
  }

  // Degradation curve at a fixed operating point.
  const Farad load = 0.10;
  const TimeNs tau_in = 0.4;
  const std::vector<TimeNs> widths{0.22, 0.26, 0.31, 0.37, 0.44, 0.53, 0.64, 0.78, 0.95};
  // The degraded edge is the pulse's *second* one: input falls back, so the
  // settled reference delay is the opposite-edge delay.
  const DelayMeasurement settled =
      measure_delay(lib, cell_name, pin, Edge::kFall, load, tau_in);
  const auto points =
      measure_degradation(lib, cell_name, pin, Edge::kRise, load, tau_in, widths);
  std::printf("degradation curve (CL=%.2f pF, tau_in=%.1f ns, settled tp0=%.4f ns):\n",
              load, tau_in, settled.tp);
  std::printf("  %-10s %-10s %-10s %s\n", "width", "T (ns)", "tp (ns)", "tp/tp0");
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].filtered) {
      std::printf("  %-10.2f %-10.4f %-10s (pulse filtered)\n", widths[i],
                  points[i].t_elapsed, "-");
    } else {
      std::printf("  %-10.2f %-10.4f %-10.4f %.3f\n", widths[i], points[i].t_elapsed,
                  points[i].tp, points[i].tp / settled.tp);
    }
  }
  const DegradationFit fit = fit_degradation(points, settled.tp);
  std::printf("  eq. 1 fit: tau = %.4f ns, T0 = %.4f ns (R^2 = %.3f, %d points)\n\n",
              fit.tau, fit.t0, fit.r_squared, fit.points_used);

  // eq. 2 and eq. 3 coefficients (auto-scaled pulse widths per point).
  const Eq2Fit eq2 = fit_eq2(lib, cell_name, pin, Edge::kRise, loads, tau_in, {});
  std::printf("eq. 2: tau*VDD = A + B*CL  ->  A = %.3f V*ns, B = %.2f V*ns/pF (R^2 = %.3f)\n",
              eq2.a, eq2.b, eq2.r_squared);
  const Eq3Fit eq3 = fit_eq3(lib, cell_name, pin, Edge::kRise, 0.06, slews, {});
  std::printf("eq. 3: T0 = (1/2 - C/VDD)*tau_in  ->  C = %.3f V (R^2 = %.3f)\n", eq3.c,
              eq3.r_squared);
  return 0;
}
