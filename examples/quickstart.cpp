// Quickstart: build a small circuit with the public API, simulate it with
// the IDDM, and inspect waveforms and statistics.
//
//   $ ./quickstart
//
// The circuit is a 1-bit full adder; we wiggle its inputs and watch the
// sum/carry respond, then print the event statistics that make HALOTIS
// different from a conventional event-driven simulator.
#include <array>
#include <cstdio>
#include <iostream>

#include "src/circuits/generators.hpp"
#include "src/core/simulator.hpp"
#include "src/waveform/ascii_plot.hpp"
#include "src/waveform/digital_waveform.hpp"

using namespace halotis;

int main() {
  // 1. A technology library: the default is a characterized 0.6 um-class
  //    library at VDD = 5 V.
  const Library lib = Library::default_u6();

  // 2. Build a circuit.  Netlists are plain graphs of library cells; here
  //    we use the full-adder helper from the generator library.
  Netlist netlist(lib);
  const SignalId a = netlist.add_primary_input("a");
  const SignalId b = netlist.add_primary_input("b");
  const SignalId cin = netlist.add_primary_input("cin");
  const FullAdderPorts fa = add_full_adder(netlist, "fa0", a, b, cin);
  netlist.mark_primary_output(fa.sum);
  netlist.mark_primary_output(fa.cout);

  // 3. Describe the stimulus: initial values plus edges (ramps with a
  //    0.4 ns default slew).
  Stimulus stim(0.4);
  stim.add_edge(a, 2.0, true);
  stim.add_edge(b, 6.0, true);
  stim.add_edge(cin, 10.0, true);
  stim.add_edge(a, 14.0, false);
  stim.add_edge(b, 14.0, false);  // simultaneous edges are fine

  // 4. Pick a delay model and run.  DdmDelayModel is the paper's Inertial
  //    and Degradation Delay Model; CdmDelayModel is the conventional
  //    baseline.
  const DdmDelayModel ddm;
  Simulator sim(netlist, ddm);
  sim.apply_stimulus(stim);
  const RunResult result = sim.run();

  // 5. Look at the results.
  std::printf("simulation finished at t = %.3f ns (%s)\n\n", result.end_time,
              result.reason == StopReason::kQueueExhausted ? "queue exhausted"
                                                           : "stopped early");

  AsciiPlot plot(0.0, 20.0, 96);
  plot.add_caption("full adder driven by staggered input edges (HALOTIS-DDM)");
  for (const SignalId sig : {a, b, cin, fa.sum, fa.cout}) {
    plot.add_digital(netlist.signal(sig).name,
                     DigitalWaveform::from_transitions(sim.initial_value(sig),
                                                       sim.history(sig)));
  }
  std::cout << plot.render() << '\n';

  const SimStats& stats = sim.stats();
  std::printf("events processed : %llu\n",
              static_cast<unsigned long long>(stats.events_processed));
  std::printf("events filtered  : %llu (inertial pair rule + pulse collapses)\n",
              static_cast<unsigned long long>(stats.filtered_events()));
  std::printf("transitions kept : %llu\n",
              static_cast<unsigned long long>(stats.surviving_transitions()));
  std::printf("sum  = %d, cout = %d (expect 1, 0 for a=0 b=0 cin=1)\n",
              sim.final_value(fa.sum) ? 1 : 0, sim.final_value(fa.cout) ? 1 : 0);
  return 0;
}
