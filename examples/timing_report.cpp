// Static vs dynamic timing: the conventional worst case against what the
// IDDM actually measures on real vectors -- and why glitch-aware dynamic
// analysis matters for power while STA still bounds arrivals.
#include <cmath>
#include <cstdio>

#include "src/circuits/arith.hpp"
#include "src/core/simulator.hpp"
#include "src/sta/sta.hpp"

using namespace halotis;

int main() {
  const Library lib = Library::default_u6();

  std::printf("Static vs dynamic timing on three adder/multiplier designs\n\n");
  struct Design {
    const char* name;
    Netlist* netlist;
    std::vector<SignalId> inputs;
    SignalId tie0;
  };

  AdderCircuit ripple = make_ripple_adder(lib, 8);
  AdderCircuit cla = make_cla_adder(lib, 8);
  MultiplierCircuit mult = make_multiplier(lib, 4);

  std::vector<Design> designs;
  {
    Design d{"ripple-carry adder 8b", &ripple.netlist, {}, ripple.tie0};
    for (SignalId s : ripple.a) d.inputs.push_back(s);
    for (SignalId s : ripple.b) d.inputs.push_back(s);
    designs.push_back(d);
  }
  {
    Design d{"carry-lookahead adder 8b", &cla.netlist, {}, cla.tie0};
    for (SignalId s : cla.a) d.inputs.push_back(s);
    for (SignalId s : cla.b) d.inputs.push_back(s);
    designs.push_back(d);
  }
  {
    Design d{"CSA multiplier 4x4", &mult.netlist, {}, mult.tie0};
    for (SignalId s : mult.a) d.inputs.push_back(s);
    for (SignalId s : mult.b) d.inputs.push_back(s);
    designs.push_back(d);
  }

  std::printf("%-26s %8s %8s | %12s %14s\n", "design", "gates", "depth",
              "STA worst ns", "measured ns");
  for (Design& d : designs) {
    const StaticTimingAnalyzer sta(*d.netlist, 0.5);
    const TimingReport report = sta.analyze();

    // Dynamic: worst settled arrival over a vector burst.
    Stimulus stim(0.5);
    const std::uint64_t all_ones = (1ull << d.inputs.size()) - 1;
    const std::vector<std::uint64_t> words{0, all_ones, 0x5555555555555555ull & all_ones,
                                           all_ones, 0};
    const TimeNs period = report.critical_delay + 3.0;
    stim.apply_sequence(d.inputs, words, period, period);
    stim.set_initial(d.tie0, false);

    const DdmDelayModel ddm;
    Simulator sim(*d.netlist, ddm);
    sim.apply_stimulus(stim);
    (void)sim.run();

    TimeNs worst_dynamic = 0.0;
    for (const SignalId po : d.netlist->primary_outputs()) {
      for (const Transition& tr : sim.history(po)) {
        const double phase = std::fmod(tr.t50(), period);
        worst_dynamic = std::max(worst_dynamic, phase);
      }
    }
    std::printf("%-26s %8zu %8d | %12.3f %14.3f\n", d.name, d.netlist->num_gates(),
                d.netlist->depth(), report.critical_delay, worst_dynamic);
  }

  std::printf("\nCritical path of the multiplier:\n");
  const StaticTimingAnalyzer sta(mult.netlist, 0.5);
  std::printf("%s", StaticTimingAnalyzer::format(sta.analyze(), mult.netlist).c_str());
  std::printf("\nSTA bounds every simulated arrival (a property test enforces this);\n"
              "the measured worst arrival is below the bound because real vectors\n"
              "rarely exercise the exact critical sensitization.\n");
  return 0;
}
