// The paper's evaluation vehicle: the 4x4 carry-save array multiplier
// (Fig. 5).  Applies the Fig. 6 multiplication sequence, compares the
// switching activity seen by HALOTIS-DDM and HALOTIS-CDM, and writes a VCD
// file for waveform viewers.
#include <cstdio>
#include <fstream>
#include <iostream>

#include "src/circuits/generators.hpp"
#include "src/core/simulator.hpp"
#include "src/power/activity.hpp"
#include "src/waveform/ascii_plot.hpp"
#include "src/waveform/vcd.hpp"

using namespace halotis;

namespace {

Stimulus sequence_stimulus(const MultiplierCircuit& mult,
                           const std::vector<std::uint64_t>& words) {
  Stimulus stim(0.5);
  std::vector<SignalId> ab;
  for (SignalId s : mult.a) ab.push_back(s);
  for (SignalId s : mult.b) ab.push_back(s);
  stim.apply_sequence(ab, words, 5.0, 5.0);
  stim.set_initial(mult.tie0, false);
  return stim;
}

}  // namespace

int main() {
  const Library lib = Library::default_u6();
  MultiplierCircuit mult = make_multiplier(lib, 4);

  // AxB: 0x0, 7x7, 5xA, Ex6, FxF (a = low nibble, b = high nibble).
  const std::vector<std::uint64_t> words{0x00, 0x77, 0xA5, 0x6E, 0xFF};

  const DdmDelayModel ddm;
  Simulator ddm_sim(mult.netlist, ddm);
  ddm_sim.apply_stimulus(sequence_stimulus(mult, words));
  (void)ddm_sim.run();

  const CdmDelayModel cdm;
  Simulator cdm_sim(mult.netlist, cdm);
  cdm_sim.apply_stimulus(sequence_stimulus(mult, words));
  (void)cdm_sim.run();

  std::printf("4x4 multiplier, sequence 0x0 7x7 5xA Ex6 FxF (one word every 5 ns)\n\n");

  const auto plot = [&](const Simulator& sim, const char* title) {
    AsciiPlot p(0.0, 27.0, 100);
    p.add_caption(title);
    for (int k = 7; k >= 0; --k) {
      const SignalId sig = mult.s[static_cast<std::size_t>(k)];
      p.add_digital("s" + std::to_string(k),
                    DigitalWaveform::from_transitions(sim.initial_value(sig),
                                                      sim.history(sig)));
    }
    std::cout << p.render() << '\n';
  };
  plot(ddm_sim, "product bits under HALOTIS-DDM (degraded glitches die)");
  plot(cdm_sim, "product bits under HALOTIS-CDM (conventional: glitches persist)");

  // Activity / power reports.
  const ActivityReport ddm_report = compute_activity(ddm_sim, 1.0);
  const ActivityReport cdm_report = compute_activity(cdm_sim, 1.0);
  std::printf("-- HALOTIS-DDM top consumers --\n%s\n",
              format_activity(ddm_report, 8).c_str());
  std::printf("-- HALOTIS-CDM top consumers --\n%s\n",
              format_activity(cdm_report, 8).c_str());
  std::printf("CDM activity overestimation: %+.1f%%\n",
              100.0 * (static_cast<double>(cdm_report.total_transitions) /
                           static_cast<double>(ddm_report.total_transitions) -
                       1.0));

  // VCD dump of the DDM run for external viewers.
  VcdWriter vcd("mult4x4");
  for (std::size_t s = 0; s < mult.netlist.num_signals(); ++s) {
    const SignalId sid{static_cast<SignalId::underlying_type>(s)};
    vcd.add_signal(mult.netlist.signal(sid).name,
                   DigitalWaveform::from_transitions(ddm_sim.initial_value(sid),
                                                     ddm_sim.history(sid)));
  }
  std::ofstream out("multiplier_ddm.vcd");
  vcd.write(out);
  std::printf("\nwrote multiplier_ddm.vcd (%zu signals)\n", mult.netlist.num_signals());
  return 0;
}
